package pipeline

import (
	"fmt"
	"time"

	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// Result is a measured pipeline execution.
type Result struct {
	// Stages holds each stage's execution report, in order.
	Stages []*mapreduce.Report
	// JCT is the end-to-end completion time.
	JCT time.Duration
	// Cost aggregates the stage bills.
	Cost mapreduce.CostBreakdown
}

// Execute runs a planned pipeline on a fresh simulated platform in
// profiled mode: each stage's final objects feed the next stage, all on
// one object store and one Lambda platform.
func Execute(params model.Params, p Pipeline, plan *Plan) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(plan.Stages) != len(p.Stages) {
		return nil, fmt.Errorf("pipeline: plan has %d stages for a %d-stage pipeline",
			len(plan.Stages), len(p.Stages))
	}
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		DisableTimeout:  true,
	})
	perObj := maxInt64(p.InputBytes/int64(p.InputObjects), 1)
	keys := make([]string, p.InputObjects)
	store.CreateBucket("pipeline-input")
	for i := range keys {
		keys[i] = workload.InputKey(i)
		store.SeedProfiled("pipeline-input", keys[i], perObj)
	}

	driver := mapreduce.NewDriver(pl)
	res := &Result{}
	err := sched.Run(func(proc *simtime.Proc) {
		bucket := "pipeline-input"
		inKeys := keys
		io := stageIO{objects: p.InputObjects, bytes: p.InputBytes}
		for i, st := range p.Stages {
			job := workload.Job{
				Profile:    st.Profile,
				NumObjects: io.objects,
				ObjectSize: maxInt64(io.bytes/int64(io.objects), 1),
			}
			rep, err := driver.Run(proc, mapreduce.JobSpec{
				Workload:  job,
				Bucket:    bucket,
				InputKeys: inKeys,
				Mode:      mapreduce.Profiled,
			}, plan.Stages[i].Config)
			if err != nil {
				panic(fmt.Errorf("stage %q: %w", st.Name, err))
			}
			res.Stages = append(res.Stages, rep)
			bucket = rep.InterBucket
			inKeys = rep.OutputKeys
			next, err := outputOf(st.Profile, io, plan.Stages[i].Config)
			if err != nil {
				panic(err)
			}
			io = next
		}
	})
	if err != nil {
		return nil, err
	}
	for _, rep := range res.Stages {
		res.JCT += rep.JCT
		res.Cost.Lambda += rep.Cost.Lambda
		res.Cost.Requests += rep.Cost.Requests
		res.Cost.Storage += rep.Cost.Storage
		res.Cost.Workflow += rep.Cost.Workflow
	}
	return res, nil
}
