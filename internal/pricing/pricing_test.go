package pricing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b USD) bool {
	return math.Abs(float64(a-b)) < 1e-12
}

func TestAWSMemoryTiersMatchPaper(t *testing.T) {
	l := AWS().Lambda
	tiers := l.MemoryTiers()
	// The paper: 128 MB to 3008 MB in 64 MB increments -> L = 46.
	if len(tiers) != 46 {
		t.Fatalf("L = %d, want 46", len(tiers))
	}
	if tiers[0] != 128 || tiers[len(tiers)-1] != 3008 {
		t.Fatalf("tier range = [%d, %d], want [128, 3008]", tiers[0], tiers[len(tiers)-1])
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i]-tiers[i-1] != 64 {
			t.Fatalf("tier step at %d = %d, want 64", i, tiers[i]-tiers[i-1])
		}
	}
	if l.NumTiers() != 46 {
		t.Fatalf("NumTiers = %d, want 46", l.NumTiers())
	}
}

func TestValidMemory(t *testing.T) {
	l := AWS().Lambda
	cases := []struct {
		mem  int
		want bool
	}{
		{128, true}, {192, true}, {3008, true}, {1024, true},
		{127, false}, {129, false}, {3072, false}, {0, false}, {-64, false},
	}
	for _, c := range cases {
		if got := l.ValidMemory(c.mem); got != c.want {
			t.Errorf("ValidMemory(%d) = %v, want %v", c.mem, got, c.want)
		}
	}
}

func TestClampMemory(t *testing.T) {
	l := AWS().Lambda
	cases := []struct{ in, want int }{
		{0, 128}, {128, 128}, {150, 128}, {161, 192}, {3500, 3008}, {1024, 1024},
	}
	for _, c := range cases {
		if got := l.ClampMemory(c.in); got != c.want {
			t.Errorf("ClampMemory(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClampMemoryAlwaysValid(t *testing.T) {
	l := AWS().Lambda
	f := func(m int16) bool {
		return l.ValidMemory(l.ClampMemory(int(m)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBilledDurationRoundsUp(t *testing.T) {
	l := AWS().Lambda
	cases := []struct{ in, want time.Duration }{
		{0, 0},
		{-time.Second, 0},
		{time.Millisecond, time.Millisecond},
		{time.Millisecond + time.Nanosecond, 2 * time.Millisecond},
		{999 * time.Microsecond, time.Millisecond},
		{time.Second, time.Second},
	}
	for _, c := range cases {
		if got := l.BilledDuration(c.in); got != c.want {
			t.Errorf("BilledDuration(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLegacyBillingQuantum(t *testing.T) {
	l := AWSLegacyBilling().Lambda
	if got := l.BilledDuration(time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("legacy BilledDuration(1ms) = %v, want 100ms", got)
	}
}

func TestBilledDurationMonotonicProperty(t *testing.T) {
	l := AWS().Lambda
	f := func(a, b uint32) bool {
		da, db := time.Duration(a)*time.Microsecond, time.Duration(b)*time.Microsecond
		ba, bb := l.BilledDuration(da), l.BilledDuration(db)
		if da <= db && ba > bb {
			return false
		}
		return ba >= da // never undercharges
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationCostPaperExample(t *testing.T) {
	// 1 GB function for exactly 1 second = the GB-second price.
	l := AWS().Lambda
	if got := l.DurationCost(1024, time.Second); !almostEqual(got, 0.0000166667) {
		t.Fatalf("DurationCost(1024MB, 1s) = %v, want $0.0000166667", got)
	}
	// 128 MB for 1 s = 1/8 of that.
	if got := l.DurationCost(128, time.Second); !almostEqual(got, 0.0000166667/8) {
		t.Fatalf("DurationCost(128MB, 1s) = %v", got)
	}
}

func TestInvocationCostPaperRate(t *testing.T) {
	l := AWS().Lambda
	// $0.20 per million requests (E in Eq. 12).
	if got := l.InvocationCost(1_000_000); !almostEqual(got, 0.20) {
		t.Fatalf("InvocationCost(1M) = %v, want $0.20", got)
	}
}

func TestRequestCostPaperRates(t *testing.T) {
	s := AWS().Store
	// $0.005 per 1000 PUT (F), $0.004 per 10000 GET (G).
	if got := s.RequestCost(0, 1000); !almostEqual(got, 0.005) {
		t.Fatalf("1000 PUTs = %v, want $0.005", got)
	}
	if got := s.RequestCost(10000, 0); !almostEqual(got, 0.004) {
		t.Fatalf("10000 GETs = %v, want $0.004", got)
	}
}

func TestStorageCost(t *testing.T) {
	s := AWS().Store
	// 1 GB held for a whole month = the monthly rate.
	byteSeconds := float64(1<<30) * (30 * 24 * 3600)
	if got := s.StorageCost(byteSeconds); !almostEqual(got, 0.023) {
		t.Fatalf("1 GB-month = %v, want $0.023", got)
	}
	if got := s.StorageCost(0); got != 0 {
		t.Fatalf("zero occupancy = %v, want 0", got)
	}
}

func TestStorageRateConsistency(t *testing.T) {
	s := AWS().Store
	// StorageRate x (MB-seconds) must agree with StorageCost(byte-seconds).
	mbSeconds := 12345.0
	a := float64(s.StorageRate()) * mbSeconds
	b := float64(s.StorageCost(mbSeconds * (1 << 20)))
	if math.Abs(a-b) > 1e-15 {
		t.Fatalf("rate path %v != direct path %v", a, b)
	}
}

func TestVMCostMinimumBilling(t *testing.T) {
	vm := AWS().VMs["m3.xlarge"]
	short := vm.VMCost(time.Second)
	minute := vm.VMCost(time.Minute)
	if short != minute {
		t.Fatalf("sub-minimum run billed %v, want the 1-minute minimum %v", short, minute)
	}
	hour := vm.VMCost(time.Hour)
	if !almostEqual(hour, 0.266+0.070) {
		t.Fatalf("1 hour of m3.xlarge+EMR = %v, want $0.336", hour)
	}
}

func TestAlternativeSheetsAreWellFormed(t *testing.T) {
	for _, sheet := range []*Sheet{AWS(), GCPLike(), AzureLike(), AWSLegacyBilling()} {
		l := sheet.Lambda
		if len(l.MemoryTiers()) == 0 {
			t.Errorf("%s: no memory tiers", sheet.Provider)
		}
		if l.Timeout <= 0 || l.MaxConcurrency <= 0 {
			t.Errorf("%s: bad quotas", sheet.Provider)
		}
		if l.PerGBSecond <= 0 || sheet.Store.PerPut <= 0 {
			t.Errorf("%s: non-positive prices", sheet.Provider)
		}
		for _, m := range l.MemoryTiers() {
			if !l.ValidMemory(m) {
				t.Errorf("%s: tier %d not self-valid", sheet.Provider, m)
			}
		}
	}
}

func TestPerSecondProportionalToMemory(t *testing.T) {
	l := AWS().Lambda
	r1 := l.PerSecond(1024)
	r2 := l.PerSecond(2048)
	if !almostEqual(r2, 2*r1) {
		t.Fatalf("price not proportional to memory: %v vs %v", r1, r2)
	}
}

func TestUSDString(t *testing.T) {
	if got := USD(0.005).String(); got != "$0.005000" {
		t.Fatalf("USD.String() = %q", got)
	}
}
