package pricing_test

import (
	"fmt"
	"time"

	"astra/internal/pricing"
)

// The paper's headline constants: 46 memory tiers, $0.20 per million
// invocations, and duration billing proportional to allocated memory.
func ExampleAWS() {
	sheet := pricing.AWS()
	fmt.Println("tiers:", sheet.Lambda.NumTiers())
	fmt.Println("1M invocations:", sheet.Lambda.InvocationCost(1_000_000))
	fmt.Println("1 GB-second:", sheet.Lambda.DurationCost(1024, time.Second))
	// Output:
	// tiers: 46
	// 1M invocations: $0.200000
	// 1 GB-second: $0.000017
}

// Billed duration rounds up to the quantum; the legacy sheet uses the
// pre-2021 100 ms granularity.
func ExampleLambda_BilledDuration() {
	now := pricing.AWS().Lambda
	legacy := pricing.AWSLegacyBilling().Lambda
	d := 42*time.Millisecond + 300*time.Microsecond
	fmt.Println(now.BilledDuration(d))
	fmt.Println(legacy.BilledDuration(d))
	// Output:
	// 43ms
	// 100ms
}
