// Package pricing holds the cloud price sheets and platform quotas that the
// Astra cost model and the simulated platforms consume.
//
// The AWS sheet reproduces the constants the paper quotes (Sec. III-B):
// $0.20 per million Lambda invocations, $0.005 per 1000 S3 PUT requests,
// $0.004 per 10000 S3 GET requests, and duration billing proportional to
// allocated memory. Alternative sheets with the quota/pricing shapes of
// other FaaS providers are included because the paper's discussion section
// notes Astra ports to them by swapping exactly this data.
package pricing

import (
	"fmt"
	"math"
	"time"
)

// USD is a monetary amount in US dollars. Float64 is sufficient: the
// smallest billable quantum (one GB-ms of the smallest function) is around
// 2e-9 USD and job totals stay far below 2^53 of those.
type USD float64

// String renders the amount with enough precision for per-request costs.
func (u USD) String() string { return fmt.Sprintf("$%.6f", float64(u)) }

// Lambda describes a FaaS platform's pricing and quotas.
type Lambda struct {
	// PerGBSecond is the duration price for one GB of allocated memory for
	// one second of execution.
	PerGBSecond USD
	// PerInvocation is the flat fee charged per function invocation.
	PerInvocation USD
	// MinMemoryMB, MaxMemoryMB and MemoryStepMB bound the configurable
	// memory sizes (the paper: 128 MB to 3008 MB in 64 MB increments).
	MinMemoryMB  int
	MaxMemoryMB  int
	MemoryStepMB int
	// BillingQuantum is the granularity execution duration is rounded up
	// to before billing (1 ms on AWS since Dec 2020; 100 ms before).
	BillingQuantum time.Duration
	// Timeout is the maximum permitted execution duration (900 s on AWS).
	Timeout time.Duration
	// MaxConcurrency is the account-level concurrent execution cap (1000).
	MaxConcurrency int
	// EphemeralStorageMB is the per-function scratch space (/tmp, 512 MB).
	EphemeralStorageMB int
}

// ObjectStore describes an S3-like store's pricing and limits.
type ObjectStore struct {
	// PerPut is the price of one PUT/POST/LIST-class request.
	PerPut USD
	// PerGet is the price of one GET-class request.
	PerGet USD
	// StoragePerGBMonth is the at-rest storage price per GB-month.
	StoragePerGBMonth USD
	// MaxObjectBytes is the single-object size limit (5 TB on S3), the O
	// constant in the paper's constraint (18).
	MaxObjectBytes int64
}

// VM describes an on-demand virtual machine offering, for the EMR
// comparison in Fig. 9.
type VM struct {
	Name      string
	PerHour   USD // EC2 on-demand price
	EMRPerHr  USD // additional EMR service fee
	VCPUs     int
	MemoryGB  float64
	BillMinim time.Duration // minimum billed duration per instance
}

// StepFunctions describes a managed workflow service (the alternative
// orchestrator of the paper's footnote 1).
type StepFunctions struct {
	// PerTransition is the fee per state transition ($0.025 per 1000 on
	// AWS Standard Workflows).
	PerTransition USD
	// TransitionLatency is the per-transition coordination delay.
	TransitionLatency time.Duration
}

// TransitionCost bills n state transitions.
func (s StepFunctions) TransitionCost(n int) USD {
	return s.PerTransition * USD(n)
}

// Sheet bundles the prices for one provider.
type Sheet struct {
	Provider      string
	Lambda        Lambda
	Store         ObjectStore
	StepFunctions StepFunctions
	VMs           map[string]VM
}

const (
	gb    = float64(1 << 30)
	month = 30 * 24 * time.Hour
)

// AWS returns the 2020-era AWS price sheet used throughout the paper.
func AWS() *Sheet {
	return &Sheet{
		Provider: "aws",
		Lambda: Lambda{
			PerGBSecond:        0.0000166667,
			PerInvocation:      0.20 / 1e6,
			MinMemoryMB:        128,
			MaxMemoryMB:        3008,
			MemoryStepMB:       64,
			BillingQuantum:     time.Millisecond,
			Timeout:            900 * time.Second,
			MaxConcurrency:     1000,
			EphemeralStorageMB: 512,
		},
		Store: ObjectStore{
			PerPut:            0.005 / 1e3,
			PerGet:            0.004 / 1e4,
			StoragePerGBMonth: 0.023,
			MaxObjectBytes:    5 << 40,
		},
		StepFunctions: StepFunctions{
			PerTransition:     0.025 / 1e3,
			TransitionLatency: 25 * time.Millisecond,
		},
		VMs: map[string]VM{
			"m3.xlarge": {
				Name:      "m3.xlarge",
				PerHour:   0.266,
				EMRPerHr:  0.070,
				VCPUs:     4,
				MemoryGB:  15,
				BillMinim: time.Minute,
			},
			"m5.xlarge": {
				Name:      "m5.xlarge",
				PerHour:   0.192,
				EMRPerHr:  0.048,
				VCPUs:     4,
				MemoryGB:  16,
				BillMinim: time.Minute,
			},
		},
	}
}

// AWSLegacyBilling returns the AWS sheet with the pre-Dec-2020 100 ms
// billing quantum, for the billing-granularity ablation.
func AWSLegacyBilling() *Sheet {
	s := AWS()
	s.Lambda.BillingQuantum = 100 * time.Millisecond
	return s
}

// GCPLike returns a sheet with Google Cloud Functions' quota shape:
// power-of-two memory tiers (emulated as 128..2048 step 128 here to keep a
// dense tier set), 540 s timeout, and slightly different unit prices.
func GCPLike() *Sheet {
	return &Sheet{
		Provider: "gcp-like",
		Lambda: Lambda{
			PerGBSecond:        0.0000165,
			PerInvocation:      0.40 / 1e6,
			MinMemoryMB:        128,
			MaxMemoryMB:        2048,
			MemoryStepMB:       128,
			BillingQuantum:     100 * time.Millisecond,
			Timeout:            540 * time.Second,
			MaxConcurrency:     1000,
			EphemeralStorageMB: 512,
		},
		Store: ObjectStore{
			PerPut:            0.005 / 1e3,
			PerGet:            0.0004 / 1e3,
			StoragePerGBMonth: 0.020,
			MaxObjectBytes:    5 << 40,
		},
		VMs: map[string]VM{},
	}
}

// AzureLike returns a sheet with Azure Functions' consumption-plan shape:
// memory billed at observed granularity up to 1536 MB, 600 s timeout.
func AzureLike() *Sheet {
	return &Sheet{
		Provider: "azure-like",
		Lambda: Lambda{
			PerGBSecond:        0.000016,
			PerInvocation:      0.20 / 1e6,
			MinMemoryMB:        128,
			MaxMemoryMB:        1536,
			MemoryStepMB:       128,
			BillingQuantum:     100 * time.Millisecond,
			Timeout:            600 * time.Second,
			MaxConcurrency:     1000,
			EphemeralStorageMB: 500,
		},
		Store: ObjectStore{
			PerPut:            0.005 / 1e3,
			PerGet:            0.0004 / 1e3,
			StoragePerGBMonth: 0.0184,
			MaxObjectBytes:    4 << 40,
		},
		VMs: map[string]VM{},
	}
}

// MemoryTiers enumerates every configurable memory size in MB, smallest
// first. For the AWS sheet this yields the paper's L = 46 tiers.
func (l Lambda) MemoryTiers() []int {
	if l.MemoryStepMB <= 0 || l.MaxMemoryMB < l.MinMemoryMB {
		return nil
	}
	var tiers []int
	for m := l.MinMemoryMB; m <= l.MaxMemoryMB; m += l.MemoryStepMB {
		tiers = append(tiers, m)
	}
	return tiers
}

// NumTiers reports the number of memory tiers (L in the paper).
func (l Lambda) NumTiers() int { return len(l.MemoryTiers()) }

// ValidMemory reports whether memMB is a configurable memory size.
func (l Lambda) ValidMemory(memMB int) bool {
	if memMB < l.MinMemoryMB || memMB > l.MaxMemoryMB {
		return false
	}
	return (memMB-l.MinMemoryMB)%l.MemoryStepMB == 0
}

// ClampMemory rounds memMB to the nearest valid tier.
func (l Lambda) ClampMemory(memMB int) int {
	if memMB <= l.MinMemoryMB {
		return l.MinMemoryMB
	}
	if memMB >= l.MaxMemoryMB {
		return l.MaxMemoryMB
	}
	steps := float64(memMB-l.MinMemoryMB) / float64(l.MemoryStepMB)
	return l.MinMemoryMB + int(math.Round(steps))*l.MemoryStepMB
}

// BilledDuration rounds d up to the billing quantum.
func (l Lambda) BilledDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	q := l.BillingQuantum
	if q <= 0 {
		return d
	}
	return ((d + q - 1) / q) * q
}

// DurationCost computes the duration component of one invocation's bill:
// billed duration x allocated GB x the GB-second price. The v_i constants
// in Eq. 13-15 are exactly PerSecond(memMB).
func (l Lambda) DurationCost(memMB int, d time.Duration) USD {
	billed := l.BilledDuration(d)
	return l.PerSecond(memMB) * USD(billed.Seconds())
}

// PerSecond reports the per-second execution price of a function with the
// given memory allocation (v_i in the paper).
func (l Lambda) PerSecond(memMB int) USD {
	return l.PerGBSecond * USD(float64(memMB)/1024.0)
}

// InvocationCost computes the flat invocation fee for n invocations
// (I terms, Eq. 12).
func (l Lambda) InvocationCost(n int) USD {
	return l.PerInvocation * USD(n)
}

// RequestCost computes the S3 request bill for the given counts (U terms,
// Eq. 10).
func (o ObjectStore) RequestCost(gets, puts int64) USD {
	return o.PerGet*USD(gets) + o.PerPut*USD(puts)
}

// StorageCost converts byte-seconds of occupancy into dollars using the
// per-GB-month rate (the H constant in Eq. 11).
func (o ObjectStore) StorageCost(byteSeconds float64) USD {
	gbMonths := byteSeconds / gb / month.Seconds()
	return o.StoragePerGBMonth * USD(gbMonths)
}

// StorageRate reports H as dollars per (MB x second), the form the
// analytic model uses.
func (o ObjectStore) StorageRate() USD {
	return o.StorageCost(1 << 20) // one MB held for one second
}

// VMCost computes the bill for running one VM for d, honoring the minimum
// billed duration, including the EMR service fee.
func (v VM) VMCost(d time.Duration) USD {
	if d < v.BillMinim {
		d = v.BillMinim
	}
	hours := d.Hours()
	return (v.PerHour + v.EMRPerHr) * USD(hours)
}
