// Package flight implements the run flight recorder: an event-sourced
// capture of everything the simulated platform does while a job executes.
// Every invocation lifecycle transition (scheduled → queued → cold-start →
// running → done/timeout/retry/throttle), every object-store request, every
// declared compute interval and every barrier wait is recorded as a
// structured virtual-time event in a bounded in-memory ring.
//
// Recording is observe-only and deterministic: events carry virtual
// timestamps only (no wall clock), emission never advances the simulated
// clock or changes scheduling, and a nil *Recorder is a zero-cost no-op on
// every method — the same contract as the telemetry registry. Two identical
// runs therefore produce byte-identical event streams.
//
// On top of the raw stream the package provides deterministic JSONL and
// OTLP-flavored span-tree exports (export.go), a critical-path analyzer
// that attributes the job completion time to the paper's per-stage terms —
// startup, compute, S3 I/O, waiting; the Eq. 3–10 decomposition — and a
// model-accuracy auditor that diffs the planner's per-term predictions
// against the recorded actuals (analyze.go), the Fig. 7–8 comparison as a
// first-class report.
package flight

import (
	"sync"
	"time"

	"astra/internal/simtime"
)

// Kind classifies an event.
type Kind string

// Event kinds. Invocation lifecycle transitions carry Inv; store requests,
// compute and waits are attributed to the invocation whose handler issued
// them (Inv 0 = the driver / root process).
const (
	// KindInvokeScheduled marks the dispatch of an invocation: Start is
	// when the caller began the invoke-API round trip, Time when the
	// invocation entered admission. By is the dispatching invocation.
	KindInvokeScheduled Kind = "invoke.scheduled"
	// KindInvokeQueued covers time spent waiting for a concurrency slot
	// (emitted only when the wait was non-zero).
	KindInvokeQueued Kind = "invoke.queued"
	// KindInvokeThrottled marks a 429 rejection at the concurrency cap.
	KindInvokeThrottled Kind = "invoke.throttled"
	// KindInvokeRetry marks an automatic retry after a throttle.
	KindInvokeRetry Kind = "invoke.retry"
	// KindInvokeColdStart covers the cold-start initialization penalty
	// (zero-length when the platform's ColdStart is zero, but still
	// emitted: the container was cold).
	KindInvokeColdStart Kind = "invoke.cold_start"
	// KindInvokeRunning marks the handler start (instant).
	KindInvokeRunning Kind = "invoke.running"
	// KindInvokeDone / Timeout / Error close an invocation: Start is the
	// handler start, Time the (billing-relevant) end. Rec links to the
	// platform's completion-ordered lambda.Record.Seq.
	KindInvokeDone    Kind = "invoke.done"
	KindInvokeTimeout Kind = "invoke.timeout"
	KindInvokeError   Kind = "invoke.error"
	// KindInvokeCanceled closes an invocation killed by the driver — a
	// speculative loser: cancelled, but billed for its elapsed duration.
	KindInvokeCanceled Kind = "invoke.canceled"

	// Object-store requests (read/write plus the metadata ops).
	KindStoreGet    Kind = "store.get"
	KindStorePut    Kind = "store.put"
	KindStoreHead   Kind = "store.head"
	KindStoreList   Kind = "store.list"
	KindStoreDelete Kind = "store.delete"
	// KindStoreCopy is a server-side duplication (S3 CopyObject): Key is
	// the destination, Bytes the object size (no transfer through the
	// caller).
	KindStoreCopy Kind = "store.copy"

	// KindChaosFault marks an injected fault taking effect: Name carries
	// the effect (or the store op class for store faults), Rule the
	// matched chaos rule.
	KindChaosFault Kind = "chaos.fault"
	// KindSpecLaunch marks a speculative backup launch (Name = attempt
	// key); KindSpecWin marks the first-finisher decision (Name = winning
	// attempt key).
	KindSpecLaunch Kind = "spec.launch"
	KindSpecWin    Kind = "spec.win"

	// KindCompute covers a handler's declared CPU work (Ctx.Work).
	KindCompute Kind = "compute"
	// KindWait covers a handler or driver blocking on an async invocation.
	KindWait Kind = "wait"
	// KindPhase marks a driver-level phase window (run, map, coordinator,
	// step-NN); Name carries the phase name.
	KindPhase Kind = "phase"
)

// Event is one recorded observation. All timestamps are virtual. Fields
// are pointered by kind: lifecycle events carry the invocation identity,
// store events the request detail, phase markers a Name. The JSON field
// order is the struct order, so exports are deterministic.
type Event struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based).
	Seq int64 `json:"seq"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Time is the event instant — for interval events, the interval end.
	Time simtime.Time `json:"t"`
	// Start is the interval start for interval events (zero otherwise).
	Start simtime.Time `json:"start,omitempty"`
	// Inv identifies the invocation the event belongs to (dispatch order,
	// 1-based; 0 = the driver / root process).
	Inv int64 `json:"inv,omitempty"`
	// By is the invocation that dispatched this one (scheduled events).
	By int64 `json:"by,omitempty"`
	// Rec is the completed invocation's lambda.Record.Seq (done-class
	// events), linking the event stream to Report.Records.
	Rec int64 `json:"rec,omitempty"`
	// Function and Label identify the lambda (lifecycle events).
	Function string `json:"fn,omitempty"`
	Label    string `json:"label,omitempty"`
	// MemoryMB is the lambda's memory tier (lifecycle events).
	MemoryMB int `json:"mem_mb,omitempty"`
	// Cold reports a cold container (running/done-class events).
	Cold bool `json:"cold,omitempty"`
	// Bucket, Key and Bytes describe a store request.
	Bucket string `json:"bucket,omitempty"`
	Key    string `json:"key,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	// Name is the phase name (phase events), the effect (chaos events) or
	// the attempt key (speculation events).
	Name string `json:"name,omitempty"`
	// Err carries the failure message (error/timeout/chaos events).
	Err string `json:"err,omitempty"`
	// Rule names the chaos rule behind an injected fault (chaos events).
	Rule string `json:"rule,omitempty"`
}

// Dur reports the event's interval length (zero for instants).
func (e Event) Dur() time.Duration {
	if e.Start == 0 && e.Kind != KindPhase {
		return 0
	}
	return e.Time - e.Start
}

// DefaultCapacity is the default ring size: generous enough that the
// evaluation-scale jobs (a few thousand invocations, a handful of events
// each) record without drops.
const DefaultCapacity = 1 << 16

// Recorder is a bounded in-memory ring of events plus the scope table that
// attributes store/compute/wait events to the invocation issuing them. All
// methods are safe on a nil receiver (no-ops) and safe for concurrent use;
// under the simulator's cooperative scheduling at most one process runs at
// a time, but the race detector sees the handoffs, so access is locked.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	head    int // index of the oldest event once the ring wrapped
	seq     int64
	invSeq  int64
	dropped int64
	scopes  map[*simtime.Proc]int64
}

// New creates a recorder with the default ring capacity.
func New() *Recorder { return NewWithCapacity(DefaultCapacity) }

// NewWithCapacity creates a recorder holding at most n events; when full,
// the oldest events are overwritten (and counted by Dropped).
func NewWithCapacity(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Recorder{cap: n, scopes: make(map[*simtime.Proc]int64)}
}

// Emit appends an event, assigning its sequence number. The event's Seq
// field is overwritten.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.emitLocked(ev)
	r.mu.Unlock()
}

func (r *Recorder) emitLocked(ev Event) {
	r.seq++
	ev.Seq = r.seq
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

// NextInvocation allocates the next invocation identity (1-based,
// dispatch-ordered). Returns 0 on a nil recorder.
func (r *Recorder) NextInvocation() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.invSeq++
	v := r.invSeq
	r.mu.Unlock()
	return v
}

// SetScope attributes subsequent store/compute/wait events issued by proc
// to the invocation; ClearScope removes the attribution.
func (r *Recorder) SetScope(p *simtime.Proc, inv int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.scopes[p] = inv
	r.mu.Unlock()
}

// ClearScope ends a proc's invocation attribution.
func (r *Recorder) ClearScope(p *simtime.Proc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.scopes, p)
	r.mu.Unlock()
}

// InvocationOf reports the invocation currently attributed to proc
// (0 = none / the driver).
func (r *Recorder) InvocationOf(p *simtime.Proc) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	v := r.scopes[p]
	r.mu.Unlock()
	return v
}

// Op records one object-store request issued by proc over [start, end].
func (r *Recorder) Op(p *simtime.Proc, kind Kind, bucket, key string, n int64, start, end simtime.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.emitLocked(Event{
		Kind: kind, Time: end, Start: start,
		Inv: r.scopes[p], Bucket: bucket, Key: key, Bytes: n,
	})
	r.mu.Unlock()
}

// Interval records a compute or wait interval issued by proc.
func (r *Recorder) Interval(p *simtime.Proc, kind Kind, start, end simtime.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.emitLocked(Event{Kind: kind, Time: end, Start: start, Inv: r.scopes[p]})
	r.mu.Unlock()
}

// Seq reports the last assigned event sequence number (0 when empty or on
// a nil recorder). Use it with EventsSince to scope one run's events when
// a recorder is reused.
func (r *Recorder) Seq() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	v := r.seq
	r.mu.Unlock()
	return v
}

// Len reports the number of events currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := len(r.buf)
	r.mu.Unlock()
	return n
}

// Dropped reports how many events the ring overwrote.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	v := r.dropped
	r.mu.Unlock()
	return v
}

// Events returns the retained events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// EventsSince returns the retained events with Seq > after, in emission
// order.
func (r *Recorder) EventsSince(after int64) []Event {
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq > after {
			return evs[i:]
		}
	}
	return nil
}
