package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSONL writes one JSON object per event, in emission order. The
// output is deterministic — field order follows the Event struct, values
// are virtual times only — so two identical runs export byte-identical
// streams.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// traceID is the constant trace identity for a single exported run. The
// simulation has no randomness source; determinism matters more than
// global uniqueness here.
const traceID = "0000000000000000000000000000a57a"

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
	BoolValue   bool   `json:"boolValue,omitempty"`
}

type otlpSpan struct {
	TraceID      string   `json:"traceId"`
	SpanID       string   `json:"spanId"`
	ParentSpanID string   `json:"parentSpanId,omitempty"`
	Name         string   `json:"name"`
	StartNano    string   `json:"startTimeUnixNano"`
	EndNano      string   `json:"endTimeUnixNano"`
	Attributes   []otlpKV `json:"attributes,omitempty"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func spanID(seq int64) string { return fmt.Sprintf("%016x", uint64(seq)) }

// phaseForLabel maps an invocation label to its owning phase name, using
// the driver's labeling scheme (map-N, red-P-R, coordinator).
func phaseForLabel(label string) string {
	switch {
	case strings.HasPrefix(label, "map-"):
		return "map"
	case label == "coordinator":
		return "coordinator"
	case strings.HasPrefix(label, "red-"):
		rest := strings.TrimPrefix(label, "red-")
		if i := strings.IndexByte(rest, '-'); i > 0 {
			if step, err := strconv.Atoi(rest[:i]); err == nil {
				return fmt.Sprintf("step-%02d", step)
			}
		}
	}
	return "run"
}

// WriteOTLP renders the event stream as an OTLP-flavored JSON span tree:
// the run phase is the root span, driver phases are its children,
// invocations nest under their phase, and each invocation's lifecycle,
// store, compute and wait events nest under the invocation. Virtual time
// is written as nanoseconds since epoch zero. Deterministic: span IDs are
// event sequence numbers and the trace ID is fixed.
func WriteOTLP(w io.Writer, events []Event) error {
	phaseSpans := map[string]string{} // phase name -> spanId
	invSpans := map[int64]string{}    // invocation -> spanId of its done-class event
	runSpan := ""
	for _, ev := range events {
		switch ev.Kind {
		case KindPhase:
			phaseSpans[ev.Name] = spanID(ev.Seq)
			if ev.Name == "run" {
				runSpan = spanID(ev.Seq)
			}
		case KindInvokeDone, KindInvokeTimeout, KindInvokeError, KindInvokeCanceled:
			invSpans[ev.Inv] = spanID(ev.Seq)
		}
	}
	parentOf := func(ev Event) string {
		switch ev.Kind {
		case KindPhase:
			if ev.Name == "run" {
				return ""
			}
			return runSpan
		case KindInvokeDone, KindInvokeTimeout, KindInvokeError, KindInvokeCanceled:
			if ps, ok := phaseSpans[phaseForLabel(ev.Label)]; ok {
				return ps
			}
			return runSpan
		default:
			if ev.Inv != 0 {
				if is, ok := invSpans[ev.Inv]; ok {
					return is
				}
			}
			return runSpan
		}
	}

	spans := make([]otlpSpan, 0, len(events))
	for _, ev := range events {
		start := ev.Start
		if start == 0 && ev.Kind != KindPhase {
			start = ev.Time
		}
		name := string(ev.Kind)
		switch {
		case ev.Kind == KindPhase:
			name = ev.Name
		case ev.Kind == KindInvokeDone || ev.Kind == KindInvokeTimeout ||
			ev.Kind == KindInvokeError || ev.Kind == KindInvokeCanceled:
			// The done-class span is the invocation's span in the tree —
			// name it by the invocation, not the closing transition.
			if ev.Label != "" {
				name = ev.Label
			} else if ev.Function != "" {
				name = ev.Function
			}
		case ev.Label != "":
			name = ev.Label + " " + string(ev.Kind)
		}
		sp := otlpSpan{
			TraceID:      traceID,
			SpanID:       spanID(ev.Seq),
			ParentSpanID: parentOf(ev),
			Name:         name,
			StartNano:    strconv.FormatInt(int64(start), 10),
			EndNano:      strconv.FormatInt(int64(ev.Time), 10),
		}
		attr := func(k string, v otlpValue) { sp.Attributes = append(sp.Attributes, otlpKV{Key: k, Value: v}) }
		attr("astra.kind", otlpValue{StringValue: string(ev.Kind)})
		if ev.Inv != 0 {
			attr("astra.inv", otlpValue{IntValue: strconv.FormatInt(ev.Inv, 10)})
		}
		if ev.Function != "" {
			attr("faas.name", otlpValue{StringValue: ev.Function})
		}
		if ev.MemoryMB != 0 {
			attr("faas.max_memory", otlpValue{IntValue: strconv.Itoa(ev.MemoryMB)})
		}
		if ev.Cold {
			attr("faas.coldstart", otlpValue{BoolValue: true})
		}
		if ev.Bucket != "" {
			attr("astra.bucket", otlpValue{StringValue: ev.Bucket})
			attr("astra.key", otlpValue{StringValue: ev.Key})
			attr("astra.bytes", otlpValue{IntValue: strconv.FormatInt(ev.Bytes, 10)})
		}
		if ev.Err != "" {
			attr("error.message", otlpValue{StringValue: ev.Err})
		}
		spans = append(spans, sp)
	}

	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{
			{Key: "service.name", Value: otlpValue{StringValue: "astra-sim"}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "astra/flight"},
			Spans: spans,
		}},
	}}}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
