package flight

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"astra/internal/simtime"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindCompute})
	r.Op(nil, KindStoreGet, "b", "k", 1, 0, 1)
	r.Interval(nil, KindCompute, 0, 1)
	r.SetScope(nil, 1)
	r.ClearScope(nil)
	if r.NextInvocation() != 0 || r.InvocationOf(nil) != 0 {
		t.Fatal("nil recorder should hand out zero identities")
	}
	if r.Seq() != 0 || r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should report empty state")
	}
	if r.EventsSince(0) != nil {
		t.Fatal("nil recorder EventsSince should be nil")
	}
}

func TestRingCapacityAndDrops(t *testing.T) {
	r := NewWithCapacity(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindCompute, Time: simtime.Time(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest overwritten first)", i, ev.Seq, want)
		}
	}
	if r.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", r.Seq())
	}
}

func TestEventsSince(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindCompute})
	}
	if got := len(r.EventsSince(3)); got != 2 {
		t.Fatalf("EventsSince(3) returned %d events, want 2", got)
	}
	if got := r.EventsSince(5); got != nil {
		t.Fatalf("EventsSince(latest) = %v, want nil", got)
	}
	if got := len(r.EventsSince(0)); got != 5 {
		t.Fatalf("EventsSince(0) returned %d events, want 5", got)
	}
}

func TestScopeAttribution(t *testing.T) {
	r := New()
	sched := simtime.NewScheduler()
	err := sched.Run(func(p *simtime.Proc) {
		inv := r.NextInvocation()
		r.SetScope(p, inv)
		if got := r.InvocationOf(p); got != inv {
			t.Errorf("InvocationOf = %d, want %d", got, inv)
		}
		r.Op(p, KindStoreGet, "b", "k", 42, p.Now(), p.Now())
		r.ClearScope(p)
		if got := r.InvocationOf(p); got != 0 {
			t.Errorf("InvocationOf after clear = %d, want 0", got)
		}
		r.Interval(p, KindCompute, 0, p.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Inv != 1 || evs[0].Bytes != 42 {
		t.Fatalf("store event not attributed: %+v", evs[0])
	}
	if evs[1].Inv != 0 {
		t.Fatalf("post-clear event should attribute to the driver: %+v", evs[1])
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	evs := []Event{
		{Seq: 1, Kind: KindInvokeScheduled, Time: 5, Inv: 1, Function: "f", Label: "map-0"},
		{Seq: 2, Kind: KindStorePut, Time: 9, Start: 5, Inv: 1, Bucket: "b", Key: "k", Bytes: 7},
		{Seq: 3, Kind: KindPhase, Time: 10, Name: "run"},
	}
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSONL exports of the same stream differ")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("%d lines for %d events", len(lines), len(evs))
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not a JSON event: %v", line, err)
		}
	}
	// Round trip: the decoded events must equal the originals.
	var got Event
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got != evs[1] {
		t.Fatalf("round trip mismatch: %+v != %+v", got, evs[1])
	}
}

func TestWriteOTLPSpanTree(t *testing.T) {
	evs := []Event{
		{Seq: 1, Kind: KindInvokeScheduled, Time: 0, Inv: 1, Function: "f", Label: "map-0"},
		{Seq: 2, Kind: KindInvokeRunning, Time: 1, Inv: 1, Function: "f", Label: "map-0", MemoryMB: 512},
		{Seq: 3, Kind: KindStoreGet, Time: 3, Start: 1, Inv: 1, Bucket: "b", Key: "k", Bytes: 9},
		{Seq: 4, Kind: KindInvokeDone, Time: 4, Start: 1, Inv: 1, Rec: 1, Function: "f", Label: "map-0", MemoryMB: 512},
		{Seq: 5, Kind: KindPhase, Time: 4, Start: 0, Name: "map"},
		{Seq: 6, Kind: KindPhase, Time: 6, Start: 0, Name: "run"},
	}
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("OTLP export is not valid JSON: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected OTLP shape: %s", buf.String())
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	byName := map[string]struct{ id, parent string }{}
	for _, sp := range spans {
		if sp.TraceID == "" || sp.SpanID == "" {
			t.Fatalf("span %q missing identity", sp.Name)
		}
		byName[sp.Name] = struct{ id, parent string }{sp.SpanID, sp.ParentSpanID}
	}
	run, ok := byName["run"]
	if !ok || run.parent != "" {
		t.Fatalf("run span must exist and be the root: %+v", byName)
	}
	mapPhase, ok := byName["map"]
	if !ok || mapPhase.parent != run.id {
		t.Fatalf("map phase must parent to run: %+v", byName)
	}
	inv, ok := byName["map-0"]
	if !ok || inv.parent != mapPhase.id {
		t.Fatalf("invocation must parent to its phase: %+v", byName)
	}
	if st, ok := byName["store.get"]; !ok || st.parent != inv.id {
		t.Fatalf("store op must parent to its invocation: %+v", byName)
	}
	if sch, ok := byName["map-0 invoke.scheduled"]; !ok || sch.parent != inv.id {
		t.Fatalf("lifecycle transition must parent to its invocation: %+v", byName)
	}
}

func TestAnalyzeNoEvents(t *testing.T) {
	if _, err := Analyze(nil); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("Analyze(nil) error = %v, want ErrNoEvents", err)
	}
}

func TestBuildAuditMeasurementOnly(t *testing.T) {
	path := &CriticalPath{JCT: 10 * time.Second, Stages: []Stage{{Name: "map", Duration: 10 * time.Second}}}
	a := BuildAudit(path, nil, 1)
	if a.Predicted != nil || len(a.Terms) != 0 {
		t.Fatalf("measurement-only audit should carry no prediction terms: %+v", a)
	}
	if a.JCTMeasured != 10*time.Second || a.CostMeasured != 1 {
		t.Fatalf("audit headline wrong: %+v", a)
	}
	if !strings.Contains(a.Render(), "critical path") {
		t.Fatal("Render must include the critical path section")
	}
	// Publish on a nil registry must be a no-op, not a panic.
	a.Publish(nil)
}

func TestStageGaugeName(t *testing.T) {
	if got := StageGauge("step-01"); got != "astra_audit_stage_abs_error_ns_step_01" {
		t.Fatalf("StageGauge = %q", got)
	}
}
