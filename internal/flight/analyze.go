package flight

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// ErrNoEvents is returned by Analyze when the stream holds no phase
// markers — i.e. the recorder was not attached to a run.
var ErrNoEvents = errors.New("flight: no recorded run (attach a recorder via WithFlightRecorder)")

// StageTerms decomposes one stage's duration into the paper's per-stage
// cost terms (Eq. 3–10): startup (dispatch serialization, queueing, cold
// start), declared compute, object-store I/O, and waiting — the residual
// slack left once the first three are accounted for. The four terms sum
// exactly to the stage duration by construction.
type StageTerms struct {
	Startup time.Duration `json:"startup"`
	Compute time.Duration `json:"compute"`
	IO      time.Duration `json:"io"`
	Waiting time.Duration `json:"waiting"`
}

// Total sums the terms (equal to the stage duration by construction).
func (t StageTerms) Total() time.Duration {
	return t.Startup + t.Compute + t.IO + t.Waiting
}

// Stage is one segment of the critical path: the map phase, the
// orchestration segment (coordinator-exclusive time, or managed-workflow
// transitions), or one reducing step. Stage durations sum exactly to the
// job completion time.
type Stage struct {
	// Name is "map", "coordinator" (or "orchestration" under a managed
	// workflow), or "step-NN".
	Name string `json:"name"`
	// MemoryMB is the memory tier of the stage's critical lambda (0 when
	// no lambda anchors the stage).
	MemoryMB int `json:"mem_mb"`
	// Duration is the stage's share of the job completion time.
	Duration time.Duration `json:"duration"`
	// Terms attributes the duration to the paper's stage terms.
	Terms StageTerms `json:"terms"`
	// Critical labels the blocking invocation (the slowest task whose
	// completion released the stage barrier).
	Critical string `json:"critical,omitempty"`
}

// Slack is the stage's waiting term: time not attributable to startup,
// compute or I/O of the blocking task.
func (s Stage) Slack() time.Duration { return s.Terms.Waiting }

// CriticalPath is the analyzer's output: the recorded run re-expressed as
// the chain of stage barriers that determined the job completion time.
type CriticalPath struct {
	// JCT is the recorded end-to-end job completion time.
	JCT time.Duration `json:"jct"`
	// Stages in execution order; durations sum exactly to JCT.
	Stages []Stage `json:"stages"`
	// Chain lists the blocking invocation labels in order.
	Chain []string `json:"chain"`
}

// Breakdown is a per-stage prediction in the same shape the analyzer
// produces for measurements, so predicted and measured runs diff
// term-by-term. model.Exact.PredictBreakdown fills one from the planner's
// replayed timeline.
type Breakdown struct {
	Stages  []Stage       `json:"stages"`
	JCT     time.Duration `json:"jct"`
	CostUSD pricing.USD   `json:"cost_usd"`
}

// perInv aggregates one invocation's attributed intervals.
type perInv struct {
	io      time.Duration
	compute time.Duration
	done    *Event
}

type window struct{ start, end simtime.Time }

func (w window) dur() time.Duration { return w.end - w.start }

// Analyze walks a run's event stream and attributes the job completion
// time to its stage barriers: the mapper wave, the shuffle barrier into
// the orchestration segment, and each reducer wave. Per stage it finds the
// blocking invocation and decomposes the stage duration into the Eq. 3–10
// terms, with waiting as the exact residual — so stage durations sum to
// the JCT and terms sum to their stage, both to the virtual-time tick.
func Analyze(events []Event) (*CriticalPath, error) {
	phases := map[string]window{}
	var stepNames []string
	invs := map[int64]*perInv{}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindPhase:
			phases[ev.Name] = window{ev.Start, ev.Time}
			if strings.HasPrefix(ev.Name, "step-") {
				stepNames = append(stepNames, ev.Name)
			}
		case KindInvokeDone, KindInvokeTimeout, KindInvokeError:
			pi := invFor(invs, ev.Inv)
			pi.done = ev
		case KindStoreGet, KindStorePut, KindStoreHead, KindStoreList, KindStoreDelete, KindStoreCopy:
			invFor(invs, ev.Inv).io += ev.Time - ev.Start
		case KindCompute:
			invFor(invs, ev.Inv).compute += ev.Time - ev.Start
		}
	}
	run, ok := phases["run"]
	if !ok {
		return nil, ErrNoEvents
	}
	mapw, ok := phases["map"]
	if !ok {
		return nil, fmt.Errorf("flight: event stream has no map phase marker")
	}

	cp := &CriticalPath{JCT: run.dur()}

	// Map stage: the critical task is the last invocation to complete
	// within the map window (its completion released the shuffle barrier).
	mapStage := stageFromWindow("map", mapw, invs, func(pi *perInv) bool {
		return pi.done.Time <= mapw.end
	})
	cp.Stages = append(cp.Stages, mapStage)

	// Reducing steps.
	var stepsTotal time.Duration
	stepStages := make([]Stage, 0, len(stepNames))
	for _, name := range stepNames {
		w := phases[name]
		st := stageFromWindow(name, w, invs, func(pi *perInv) bool {
			return pi.done.Start >= w.start && pi.done.Time <= w.end
		})
		stepsTotal += st.Duration
		stepStages = append(stepStages, st)
	}

	// Orchestration stage: everything the map phase and the reducing steps
	// do not cover — the coordinator's exclusive time under the
	// coordinator-lambda orchestrator (compute, state writes, its own
	// startup), or the managed workflow's transition latencies. Computing
	// it as the residual makes the stage sum exact by construction.
	orch := Stage{Name: "orchestration", Duration: cp.JCT - mapStage.Duration - stepsTotal}
	if cw, ok := phases["coordinator"]; ok {
		orch.Name = "coordinator"
		if pi := coordinatorInv(invs); pi != nil {
			orch.MemoryMB = pi.done.MemoryMB
			orch.Critical = labelOf(pi.done)
			orch.Terms.Startup = pi.done.Start - cw.start
			orch.Terms.Compute = pi.compute
			orch.Terms.IO = pi.io
			orch.Terms.Waiting = orch.Duration - orch.Terms.Startup - orch.Terms.Compute - orch.Terms.IO
		} else {
			orch.Terms.Waiting = orch.Duration
		}
	} else {
		// Managed workflow: the whole segment is orchestration overhead,
		// closest in kind to startup (transition latency before each wave).
		orch.Terms.Startup = orch.Duration
	}
	cp.Stages = append(cp.Stages, orch)
	cp.Stages = append(cp.Stages, stepStages...)

	for _, st := range cp.Stages {
		if st.Critical != "" {
			cp.Chain = append(cp.Chain, st.Critical)
		}
	}
	return cp, nil
}

func invFor(m map[int64]*perInv, inv int64) *perInv {
	pi, ok := m[inv]
	if !ok {
		pi = &perInv{}
		m[inv] = pi
	}
	return pi
}

func labelOf(ev *Event) string {
	if ev.Label != "" {
		return ev.Label
	}
	return ev.Function
}

// stageFromWindow builds a stage whose critical task is the
// latest-completing invocation matching the filter; ties break toward the
// earlier event, which is deterministic because the stream is.
func stageFromWindow(name string, w window, invs map[int64]*perInv, match func(*perInv) bool) Stage {
	st := Stage{Name: name, Duration: w.dur()}
	// Map iteration order is random, but the selection is a strict
	// argmax with a lowest-invocation tiebreak, so the critical task is
	// deterministic regardless.
	var crit *perInv
	var critInv int64
	for inv, pi := range invs {
		if inv == 0 || pi.done == nil || !match(pi) {
			continue
		}
		if crit == nil || pi.done.Time > crit.done.Time ||
			(pi.done.Time == crit.done.Time && inv < critInv) {
			crit, critInv = pi, inv
		}
	}
	if crit == nil {
		st.Terms.Waiting = st.Duration
		return st
	}
	st.MemoryMB = crit.done.MemoryMB
	st.Critical = labelOf(crit.done)
	st.Terms.Startup = crit.done.Start - w.start
	st.Terms.Compute = crit.compute
	st.Terms.IO = crit.io
	st.Terms.Waiting = st.Duration - st.Terms.Startup - st.Terms.Compute - st.Terms.IO
	return st
}

// coordinatorInv finds the coordinator's aggregate by its driver label.
func coordinatorInv(invs map[int64]*perInv) *perInv {
	for inv, pi := range invs {
		if inv != 0 && pi.done != nil && pi.done.Label == "coordinator" {
			return pi
		}
	}
	return nil
}

// TermError compares one predicted term against its recorded actual.
type TermError struct {
	// Stage is the measured stage name; Term is "total", "startup",
	// "compute", "io" or "waiting".
	Stage string `json:"stage"`
	Term  string `json:"term"`
	// MemoryMB is the measured stage's memory tier.
	MemoryMB  int           `json:"mem_mb"`
	Predicted time.Duration `json:"predicted"`
	Measured  time.Duration `json:"measured"`
}

// Abs is the absolute prediction error.
func (te TermError) Abs() time.Duration {
	d := te.Predicted - te.Measured
	if d < 0 {
		d = -d
	}
	return d
}

// PctError is the absolute percentage error against the measured value
// (0 when the measured value is zero).
func (te TermError) PctError() float64 {
	if te.Measured == 0 {
		return 0
	}
	return 100 * float64(te.Abs()) / float64(te.Measured)
}

// TierAccuracy aggregates stage-level prediction error per memory tier.
type TierAccuracy struct {
	MemoryMB int     `json:"mem_mb"`
	MAPEPct  float64 `json:"mape_pct"`
	Stages   int     `json:"stages"`
}

// Audit is the model-accuracy report: the measured critical path, the
// planner's per-term predictions for the same Config, and the per-term
// error table — the Fig. 7–8 predicted-vs-measured comparison per stage
// and per memory tier.
type Audit struct {
	// Path is the measured critical path.
	Path *CriticalPath `json:"path"`
	// Predicted is the planner's per-stage breakdown (nil when no
	// prediction was attached to the report).
	Predicted *Breakdown `json:"predicted,omitempty"`

	JCTMeasured   time.Duration `json:"jct_measured"`
	JCTPredicted  time.Duration `json:"jct_predicted"`
	CostMeasured  pricing.USD   `json:"cost_measured"`
	CostPredicted pricing.USD   `json:"cost_predicted"`

	// Terms holds the per-stage, per-term comparison (empty without a
	// prediction).
	Terms []TermError `json:"terms,omitempty"`
	// Tiers aggregates stage-duration MAPE per memory tier.
	Tiers []TierAccuracy `json:"tiers,omitempty"`
	// MAPEPct is the mean absolute percentage error across stage
	// durations.
	MAPEPct float64 `json:"mape_pct"`
}

// BuildAudit combines a measured critical path with a predicted breakdown.
// Stages are matched positionally (both sides order them map,
// orchestration, steps); pred may be nil, yielding a measurement-only
// audit.
func BuildAudit(path *CriticalPath, pred *Breakdown, measuredCost pricing.USD) *Audit {
	a := &Audit{
		Path:         path,
		Predicted:    pred,
		JCTMeasured:  path.JCT,
		CostMeasured: measuredCost,
	}
	if pred == nil {
		return a
	}
	a.JCTPredicted = pred.JCT
	a.CostPredicted = pred.CostUSD

	n := len(path.Stages)
	if len(pred.Stages) < n {
		n = len(pred.Stages)
	}
	type tierAgg struct {
		sum    float64
		stages int
	}
	tiers := map[int]*tierAgg{}
	var tierOrder []int
	var mapeSum float64
	var mapeN int
	for i := 0; i < n; i++ {
		ms, ps := path.Stages[i], pred.Stages[i]
		add := func(term string, p, m time.Duration) {
			a.Terms = append(a.Terms, TermError{
				Stage: ms.Name, Term: term, MemoryMB: ms.MemoryMB,
				Predicted: p, Measured: m,
			})
		}
		add("total", ps.Duration, ms.Duration)
		total := a.Terms[len(a.Terms)-1]
		add("startup", ps.Terms.Startup, ms.Terms.Startup)
		add("compute", ps.Terms.Compute, ms.Terms.Compute)
		add("io", ps.Terms.IO, ms.Terms.IO)
		add("waiting", ps.Terms.Waiting, ms.Terms.Waiting)

		if ms.Duration > 0 {
			pct := total.PctError()
			mapeSum += pct
			mapeN++
			ta, ok := tiers[ms.MemoryMB]
			if !ok {
				ta = &tierAgg{}
				tiers[ms.MemoryMB] = ta
				tierOrder = append(tierOrder, ms.MemoryMB)
			}
			ta.sum += pct
			ta.stages++
		}
	}
	if mapeN > 0 {
		a.MAPEPct = mapeSum / float64(mapeN)
	}
	for i := 1; i < len(tierOrder); i++ { // insertion sort: tiny slice
		for j := i; j > 0 && tierOrder[j-1] > tierOrder[j]; j-- {
			tierOrder[j-1], tierOrder[j] = tierOrder[j], tierOrder[j-1]
		}
	}
	for _, mem := range tierOrder {
		ta := tiers[mem]
		a.Tiers = append(a.Tiers, TierAccuracy{
			MemoryMB: mem,
			MAPEPct:  ta.sum / float64(ta.stages),
			Stages:   ta.stages,
		})
	}
	return a
}

func fmtSec(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// Render writes the audit as a human-readable report: the measured
// critical path with its term decomposition, then — when a prediction is
// attached — the per-term error table and tier summary.
func (a *Audit) Render() string {
	var b strings.Builder
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	line("flight audit")
	line("  measured:   JCT %s, cost %v", fmtSec(a.JCTMeasured), a.CostMeasured)
	if a.Predicted != nil {
		line("  predicted:  JCT %s, cost %v", fmtSec(a.JCTPredicted), a.CostPredicted)
		jctErr := TermError{Predicted: a.JCTPredicted, Measured: a.JCTMeasured}
		costErr := 0.0
		if a.CostMeasured != 0 {
			costErr = 100 * abs64(float64(a.CostPredicted-a.CostMeasured)) / float64(a.CostMeasured)
		}
		line("  error:      JCT %s (%.2f%%), cost %.2f%%", fmtSec(jctErr.Abs()), jctErr.PctError(), costErr)
	}
	line("critical path (duration = startup + compute + io + waiting)")
	for _, st := range a.Path.Stages {
		mem := "-"
		if st.MemoryMB > 0 {
			mem = fmt.Sprintf("%d MB", st.MemoryMB)
		}
		via := ""
		if st.Critical != "" {
			via = "  via " + st.Critical
		}
		line("  %-13s %s = %s + %s + %s + %s  @%s%s",
			st.Name, fmtSec(st.Duration),
			fmtSec(st.Terms.Startup), fmtSec(st.Terms.Compute),
			fmtSec(st.Terms.IO), fmtSec(st.Terms.Waiting), mem, via)
	}
	if len(a.Path.Chain) > 0 {
		line("  blocking chain: %s", strings.Join(a.Path.Chain, " -> "))
	}
	if a.Predicted == nil || len(a.Terms) == 0 {
		return b.String()
	}
	line("model accuracy (per stage, per term)")
	line("  %-13s %-8s %10s %10s %10s %8s", "stage", "term", "predicted", "measured", "abs err", "err%")
	for _, te := range a.Terms {
		line("  %-13s %-8s %10s %10s %10s %7.2f%%",
			te.Stage, te.Term, fmtSec(te.Predicted), fmtSec(te.Measured),
			fmtSec(te.Abs()), te.PctError())
	}
	line("per-tier stage MAPE")
	for _, t := range a.Tiers {
		tier := "(no lambda)"
		if t.MemoryMB > 0 {
			tier = fmt.Sprintf("%d MB", t.MemoryMB)
		}
		line("  %-12s %6.2f%% over %d stage(s)", tier, t.MAPEPct, t.Stages)
	}
	line("overall stage MAPE: %.2f%%", a.MAPEPct)
	return b.String()
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// permille converts a percentage to integer per-mille for gauge export.
func permille(pct float64) int64 { return int64(pct * 10) }

// Publish mirrors the audit's headline errors into the telemetry registry
// as astra_audit_* gauges. Percentages are exported as integer per-mille
// (gauges are int64); absolute errors as nanoseconds. Safe on a nil
// registry.
func (a *Audit) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge(telemetry.MAuditStages).Set(int64(len(a.Path.Stages)))
	if a.Predicted == nil {
		return
	}
	jct := TermError{Predicted: a.JCTPredicted, Measured: a.JCTMeasured}
	reg.Gauge(telemetry.MAuditJCTAbsErrorNanos).Set(int64(jct.Abs()))
	reg.Gauge(telemetry.MAuditJCTErrorPermille).Set(permille(jct.PctError()))
	costErr := 0.0
	if a.CostMeasured != 0 {
		costErr = 100 * abs64(float64(a.CostPredicted-a.CostMeasured)) / float64(a.CostMeasured)
	}
	reg.Gauge(telemetry.MAuditCostErrorPermille).Set(permille(costErr))
	reg.Gauge(telemetry.MAuditStageMAPEPermille).Set(permille(a.MAPEPct))
	for _, te := range a.Terms {
		if te.Term != "total" {
			continue
		}
		reg.Gauge(StageGauge(te.Stage)).Set(int64(te.Abs()))
	}
}

// StageGauge derives the per-stage absolute-error gauge name (Prometheus
// charset: dashes become underscores).
func StageGauge(stage string) string {
	return "astra_audit_stage_abs_error_ns_" + strings.ReplaceAll(stage, "-", "_")
}
