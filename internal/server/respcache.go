// The TTL'd response cache: a bounded LRU of rendered response bodies
// keyed by canonical request fingerprint. It sits above the DAG-template
// and prediction caches — a hit serves the exact bytes of the first
// response and never touches the search engine at all, which is what
// makes a warm repeated tenant request ~free. Entries expire after a TTL
// so long-lived servers re-plan eventually (a price-sheet or model
// change redeploys the process, but defense in depth is cheap).
package server

import (
	"container/list"
	"sync"
	"time"

	"astra/internal/telemetry"
)

// RespCacheStats summarizes response-cache traffic.
type RespCacheStats struct {
	Hits      int64
	Misses    int64
	Expired   int64
	Evictions int64
	Entries   int
}

type respEntry struct {
	key     string
	body    []byte
	storedA time.Time
}

// RespCache is a bounded, TTL'd LRU of rendered responses. Safe for
// concurrent use.
type RespCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	max     int
	now     func() time.Time
	order   *list.List // front = most recent
	entries map[string]*list.Element

	hits, misses, expired, evictions *telemetry.Counter
	resident                         *telemetry.Gauge
}

// NewRespCache builds a cache holding at most max entries for at most
// ttl each (max <= 0: 1024; ttl <= 0: 60s). now defaults to time.Now.
func NewRespCache(max int, ttl time.Duration, reg *telemetry.Registry, now func() time.Time) *RespCache {
	if max <= 0 {
		max = 1024
	}
	if ttl <= 0 {
		ttl = time.Minute
	}
	if now == nil {
		now = time.Now
	}
	if reg == nil {
		reg = telemetry.New()
	}
	return &RespCache{
		ttl:       ttl,
		max:       max,
		now:       now,
		order:     list.New(),
		entries:   make(map[string]*list.Element),
		hits:      reg.Counter(telemetry.MServerRespCacheHits),
		misses:    reg.Counter(telemetry.MServerRespCacheMisses),
		expired:   reg.Counter(telemetry.MServerRespCacheExpired),
		evictions: reg.Counter(telemetry.MServerRespCacheEvictions),
		resident:  reg.Gauge(telemetry.MServerRespCacheEntries),
	}
}

// Get returns the cached body for key, or nil on miss. Expired entries
// count as both an expiry and a miss (the caller re-plans and re-Puts).
// The returned slice is shared and must not be mutated.
func (c *RespCache) Get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil
	}
	ent := el.Value.(*respEntry)
	if c.now().Sub(ent.storedA) >= c.ttl {
		c.removeLocked(el)
		c.expired.Inc()
		c.misses.Inc()
		return nil
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return ent.body
}

// Put stores a rendered response, evicting the least-recently-used
// entry past the bound.
func (c *RespCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*respEntry).body = body
		el.Value.(*respEntry).storedA = c.now()
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&respEntry{key: key, body: body, storedA: c.now()})
	c.entries[key] = el
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.removeLocked(oldest)
		c.evictions.Inc()
	}
	c.resident.Set(int64(c.order.Len()))
}

// removeLocked drops one element. Caller holds mu.
func (c *RespCache) removeLocked(el *list.Element) {
	c.order.Remove(el)
	delete(c.entries, el.Value.(*respEntry).key)
	c.resident.Set(int64(c.order.Len()))
}

// Stats snapshots the counters.
func (c *RespCache) Stats() RespCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RespCacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Expired:   c.expired.Value(),
		Evictions: c.evictions.Value(),
		Entries:   c.order.Len(),
	}
}
