package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"astra/internal/telemetry"
)

// vclock is a manually-advanced clock; admission decisions become a pure
// function of the request sequence.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock {
	return &vclock{t: time.Unix(1_700_000_000, 0)}
}

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestAdmissionDeterministic429Sequence pins the determinism contract:
// with a fixed virtual clock, the accept/reject sequence — including
// every Retry-After value — is byte-identical across runs.
func TestAdmissionDeterministic429Sequence(t *testing.T) {
	run := func() string {
		clk := newVclock()
		a := NewAdmission(TenantQuota{Rate: 2, Burst: 3, MaxInFlight: 8}, telemetry.New(), nil, clk.now)
		out := ""
		for i := 0; i < 10; i++ {
			ticket, rej, err := a.Admit(context.Background(), "t1")
			switch {
			case err != nil:
				t.Fatalf("admit %d: %v", i, err)
			case rej != nil:
				out += fmt.Sprintf("reject(%s,%s);", rej.Reason, rej.RetryAfter)
			default:
				out += "admit;"
				ticket.Release()
			}
			clk.advance(100 * time.Millisecond) // refills 0.2 tokens/step
		}
		return out
	}
	first := run()
	// Burst of 3 admits immediately; then the bucket crawls at 0.2
	// tokens per step, so most steps reject with a precise refill wait.
	want := "admit;admit;admit;" +
		"reject(rate,200ms);reject(rate,100ms);admit;" +
		"reject(rate,400ms);reject(rate,300ms);reject(rate,200ms);reject(rate,100ms);"
	if first != want {
		t.Fatalf("sequence:\n got %s\nwant %s", first, want)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n got %s\nwant %s", i, got, first)
		}
	}
}

// TestAdmissionTenantsIndependent: one tenant exhausting its bucket must
// not affect another's.
func TestAdmissionTenantsIndependent(t *testing.T) {
	clk := newVclock()
	a := NewAdmission(TenantQuota{Rate: 1, Burst: 1, MaxInFlight: 4}, telemetry.New(), nil, clk.now)
	tk, rej, _ := a.Admit(context.Background(), "a")
	if rej != nil {
		t.Fatal("tenant a first request rejected")
	}
	tk.Release()
	if _, rej, _ := a.Admit(context.Background(), "a"); rej == nil {
		t.Fatal("tenant a second request should be rate-limited")
	}
	tk, rej, _ = a.Admit(context.Background(), "b")
	if rej != nil {
		t.Fatalf("tenant b rejected by tenant a's bucket: %+v", rej)
	}
	tk.Release()
}

// TestAdmissionQueueFIFO: waiters past the in-flight cap are served
// oldest-first as slots free up, and QueueWait is measured on the
// injected clock.
func TestAdmissionQueueFIFO(t *testing.T) {
	clk := newVclock()
	a := NewAdmission(TenantQuota{Burst: 100, MaxInFlight: 1, MaxQueue: 4}, telemetry.New(), nil, clk.now)
	first, rej, err := a.Admit(context.Background(), "t")
	if rej != nil || err != nil {
		t.Fatalf("first admit: rej=%v err=%v", rej, err)
	}

	order := make(chan int, 3)
	var started, done sync.WaitGroup
	for i := 1; i <= 3; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			tk, rej, err := a.Admit(context.Background(), "t")
			if rej != nil || err != nil {
				t.Errorf("queued admit %d: rej=%v err=%v", i, rej, err)
				return
			}
			order <- i
			tk.Release()
		}(i)
		started.Wait()
		started = sync.WaitGroup{}
		// Wait until this goroutine is parked in the queue before
		// launching the next, so arrival order is the launch order.
		for {
			if a.QueueDepth() == int64(i) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	clk.advance(50 * time.Millisecond)
	first.Release()
	done.Wait()
	for want := 1; want <= 3; want++ {
		if got := <-order; got != want {
			t.Fatalf("service order: got %d, want %d", got, want)
		}
	}
}

// TestAdmissionQueueFullRejects: a full accept queue is a deterministic
// 429, not unbounded memory.
func TestAdmissionQueueFullRejects(t *testing.T) {
	a := NewAdmission(TenantQuota{Burst: 100, MaxInFlight: 1, MaxQueue: 0}, telemetry.New(), nil, newVclock().now)
	tk, _, _ := a.Admit(context.Background(), "t")
	defer tk.Release()
	_, rej, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if rej == nil || rej.Reason != "queue_full" || rej.RetryAfter != queueFullRetry {
		t.Fatalf("rejection = %+v, want queue_full with %s", rej, queueFullRetry)
	}
}

// TestAdmissionQueuedWaiterCancel: a cancelled waiter leaves the queue
// and never leaks the slot, even when the grant races the cancellation.
func TestAdmissionQueuedWaiterCancel(t *testing.T) {
	a := NewAdmission(TenantQuota{Burst: 100, MaxInFlight: 1, MaxQueue: 4}, telemetry.New(), nil, newVclock().now)
	tk, _, _ := a.Admit(context.Background(), "t")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := a.Admit(ctx, "t")
		errc <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled waiter error = %v", err)
	}
	tk.Release()
	// The slot must be free again: a fresh request admits immediately.
	tk2, rej, err := a.Admit(context.Background(), "t")
	if rej != nil || err != nil {
		t.Fatalf("slot leaked: rej=%v err=%v", rej, err)
	}
	tk2.Release()
}

// TestAdmissionDrainingReleasesWaiters: closing the shutdown channel
// aborts queued waiters with ErrDraining.
func TestAdmissionDrainingReleasesWaiters(t *testing.T) {
	closing := make(chan struct{})
	a := NewAdmission(TenantQuota{Burst: 100, MaxInFlight: 1, MaxQueue: 4}, telemetry.New(), closing, newVclock().now)
	tk, _, _ := a.Admit(context.Background(), "t")
	defer tk.Release()
	errc := make(chan error, 1)
	go func() {
		_, _, err := a.Admit(context.Background(), "t")
		errc <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	close(closing)
	if err := <-errc; err != ErrDraining {
		t.Fatalf("drained waiter error = %v, want ErrDraining", err)
	}
}
