// Per-tenant admission control for the planning service: a token-bucket
// rate limit in front of a max-in-flight cap with a bounded FIFO accept
// queue. Every decision is a pure function of (quota, tenant state,
// clock), so a fixed virtual clock replays a byte-identical accept/429
// sequence — the property the determinism tests pin.
package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"astra/internal/telemetry"
)

// TenantQuota is the admission policy applied to each tenant
// independently (one bucket, one in-flight cap, one queue per tenant).
type TenantQuota struct {
	// Rate is the sustained request rate in tokens/second. <= 0 means
	// unlimited: the bucket never rejects.
	Rate float64
	// Burst is the bucket depth (< 1 is raised to 1 so a full bucket
	// always admits at least one request).
	Burst float64
	// MaxInFlight caps concurrently-served requests (<= 0: 1).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; a full
	// queue rejects deterministically rather than growing memory.
	MaxQueue int
}

func (q TenantQuota) normalized() TenantQuota {
	if q.Burst < 1 {
		q.Burst = 1
	}
	if q.MaxInFlight <= 0 {
		q.MaxInFlight = 1
	}
	if q.MaxQueue < 0 {
		q.MaxQueue = 0
	}
	return q
}

// queueFullRetry is the deterministic Retry-After for a full accept
// queue: the slot-drain horizon is unknowable, so a fixed hint beats a
// guess that varies with load.
const queueFullRetry = 100 * time.Millisecond

// ErrDraining is returned by Admit when the server is shutting down.
var ErrDraining = errors.New("server: draining")

// Rejection describes a deterministic 429.
type Rejection struct {
	// Reason is "rate" (token bucket empty) or "queue_full".
	Reason string
	// RetryAfter is the precise wait until the bucket refills one token
	// (rate rejections) or the fixed queue-full hint.
	RetryAfter time.Duration
}

// Ticket is one admitted request; Release returns the in-flight slot
// (handing it to the oldest queued waiter, if any). QueueWait is how
// long the request sat in the accept queue before being served.
type Ticket struct {
	QueueWait time.Duration
	release   func()
}

// Release returns the slot. Safe to call exactly once.
func (t *Ticket) Release() { t.release() }

type waiter struct {
	ch      chan struct{}
	granted bool
}

type tenantState struct {
	tokens   float64
	last     time.Time
	inflight int
	queue    []*waiter
}

// Admission is the per-tenant admission controller. Safe for concurrent
// use; the zero value is not usable — construct with NewAdmission.
type Admission struct {
	mu      sync.Mutex
	quota   TenantQuota
	now     func() time.Time
	closing <-chan struct{}
	tenants map[string]*tenantState

	queueDepth *telemetry.Gauge
	inFlight   *telemetry.Gauge
}

// NewAdmission builds a controller applying quota to every tenant.
// closing, when non-nil, aborts queued waiters on shutdown. now
// defaults to time.Now; tests inject a virtual clock.
func NewAdmission(quota TenantQuota, reg *telemetry.Registry, closing <-chan struct{}, now func() time.Time) *Admission {
	if now == nil {
		now = time.Now
	}
	if reg == nil {
		reg = telemetry.New()
	}
	return &Admission{
		quota:      quota.normalized(),
		now:        now,
		closing:    closing,
		tenants:    make(map[string]*tenantState),
		queueDepth: reg.Gauge(telemetry.MServerQueueDepth),
		inFlight:   reg.Gauge(telemetry.MServerInFlight),
	}
}

// tenant returns (creating if needed) a tenant's state. Caller holds mu.
func (a *Admission) tenant(id string) *tenantState {
	ts := a.tenants[id]
	if ts == nil {
		ts = &tenantState{tokens: a.quota.Burst, last: a.now()}
		a.tenants[id] = ts
	}
	return ts
}

// refill advances the bucket to the current instant. Caller holds mu.
func (a *Admission) refill(ts *tenantState) {
	now := a.now()
	if elapsed := now.Sub(ts.last); elapsed > 0 && a.quota.Rate > 0 {
		ts.tokens = math.Min(a.quota.Burst, ts.tokens+elapsed.Seconds()*a.quota.Rate)
	}
	ts.last = now
}

// Admit gates one request for tenant id. Exactly one of the returns is
// non-nil/nil-error: a Ticket (whose Release must be called when the
// request finishes), a Rejection (deterministic 429), or an error
// (context cancelled, or ErrDraining on shutdown).
func (a *Admission) Admit(ctx context.Context, id string) (*Ticket, *Rejection, error) {
	a.mu.Lock()
	ts := a.tenant(id)
	a.refill(ts)
	if a.quota.Rate > 0 && ts.tokens < 1 {
		wait := time.Duration(math.Ceil((1 - ts.tokens) / a.quota.Rate * float64(time.Second)))
		a.mu.Unlock()
		return nil, &Rejection{Reason: "rate", RetryAfter: wait}, nil
	}
	if a.quota.Rate > 0 {
		ts.tokens--
	}
	if ts.inflight < a.quota.MaxInFlight {
		ts.inflight++
		a.inFlight.Add(1)
		a.mu.Unlock()
		return &Ticket{release: a.releaseFn(ts)}, nil, nil
	}
	if len(ts.queue) >= a.quota.MaxQueue {
		a.mu.Unlock()
		return nil, &Rejection{Reason: "queue_full", RetryAfter: queueFullRetry}, nil
	}
	w := &waiter{ch: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	a.queueDepth.Add(1)
	queuedAt := a.now()
	a.mu.Unlock()

	select {
	case <-w.ch:
		a.queueDepth.Add(-1)
		return &Ticket{QueueWait: a.now().Sub(queuedAt), release: a.releaseFn(ts)}, nil, nil
	case <-ctx.Done():
		a.abandon(ts, w)
		return nil, nil, ctx.Err()
	case <-a.closingChan():
		a.abandon(ts, w)
		return nil, nil, ErrDraining
	}
}

// closingChan never returns nil (a nil channel would block forever,
// which is the desired behavior, but selecting on a method result keeps
// the intent explicit).
func (a *Admission) closingChan() <-chan struct{} {
	return a.closing
}

// abandon removes a waiter that stopped waiting. If the grant raced the
// abandonment — Release handed it the slot just as its context fired —
// the slot is passed straight back so it is never leaked.
func (a *Admission) abandon(ts *tenantState, w *waiter) {
	a.mu.Lock()
	if w.granted {
		// The slot is ours; hand it on (or free it) under the same lock.
		a.releaseLocked(ts)
		a.mu.Unlock()
		a.queueDepth.Add(-1)
		return
	}
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
	a.queueDepth.Add(-1)
}

// releaseFn returns the Ticket's release closure for a tenant slot.
func (a *Admission) releaseFn(ts *tenantState) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.releaseLocked(ts)
			a.mu.Unlock()
		})
	}
}

// releaseLocked frees one in-flight slot or hands it to the oldest
// queued waiter. Caller holds mu.
func (a *Admission) releaseLocked(ts *tenantState) {
	if len(ts.queue) > 0 {
		w := ts.queue[0]
		ts.queue = ts.queue[1:]
		w.granted = true
		close(w.ch)
		return // slot transfers; inflight count unchanged
	}
	ts.inflight--
	a.inFlight.Add(-1)
}

// QueueDepth reports the total queued waiters across tenants.
func (a *Admission) QueueDepth() int64 { return a.queueDepth.Value() }
