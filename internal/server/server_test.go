package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"astra/internal/api"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/qos"
	"astra/internal/telemetry"
)

const planBody = `{"workload":"wordcount","num_objects":10,"object_bytes":1048576,"objective":{"goal":"min_time","budget_usd":1}}`

// startReal starts a server over the production service with private
// caches (tests must not warm the process-wide shared pair).
func startReal(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.Service == nil {
		cfg.Service = NewService(ServiceConfig{
			Templates: optimizer.NewTemplateCache(0),
			Cache:     model.NewPredictionCache(),
			Tel:       cfg.Telemetry,
			Ledger:    qos.NewLedger(),
		})
	}
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

func post(t *testing.T, url, tenant, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(api.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestPlanEndToEnd: a valid plan request returns a config, predictions,
// search stats and an explain report.
func TestPlanEndToEnd(t *testing.T) {
	srv := startReal(t, Config{})
	resp, body := post(t, srv.URL()+"/v1/plan", "acme", planBody)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr api.PlanResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Config.MapperMemMB <= 0 || pr.PredictedJCTSeconds <= 0 || pr.Explain == "" {
		t.Fatalf("incomplete plan response: %+v", pr)
	}
	if resp.Header.Get(api.CacheHeader) != "miss" {
		t.Fatalf("first request cache header = %q, want miss", resp.Header.Get(api.CacheHeader))
	}
}

// TestResponseCacheServesWithoutSearch is the acceptance gate for the
// response cache: a warm repeat returns byte-identical bytes, is marked
// a hit, and provably never invokes the search engine
// (astra_plan_solves_total is counter-verified flat).
func TestResponseCacheServesWithoutSearch(t *testing.T) {
	tel := telemetry.New()
	srv := startReal(t, Config{Telemetry: tel})

	resp1, body1 := post(t, srv.URL()+"/v1/plan", "acme", planBody)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold status %d: %s", resp1.StatusCode, body1)
	}
	solvesAfterCold := tel.Counter(telemetry.MPlanSolves).Value()
	if solvesAfterCold == 0 {
		t.Fatal("cold request did not count a solve — counter wiring broken")
	}

	// Different tenant on purpose: planning is tenant-independent, so the
	// fingerprint (and therefore the cached body) is shared.
	resp2, body2 := post(t, srv.URL()+"/v1/plan", "globex", planBody)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm status %d: %s", resp2.StatusCode, body2)
	}
	if body2 != body1 {
		t.Fatalf("cached body diverged:\ncold %s\nwarm %s", body1, body2)
	}
	if got := resp2.Header.Get(api.CacheHeader); got != "hit" {
		t.Fatalf("warm cache header = %q, want hit", got)
	}
	if got := tel.Counter(telemetry.MPlanSolves).Value(); got != solvesAfterCold {
		t.Fatalf("warm request invoked the search engine: solves %d -> %d", solvesAfterCold, got)
	}
	if st := srv.RespCache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("respcache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestErrorTaxonomy pins the status mapping: 400 for malformed requests,
// 422 for infeasible objectives, one JSON envelope everywhere.
func TestErrorTaxonomy(t *testing.T) {
	srv := startReal(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown workload", `{"workload":"nope","num_objects":1,"object_bytes":1,"objective":{"goal":"min_time"}}`, 400},
		{"unknown field", `{"workload":"wordcount","wat":1}`, 400},
		{"no goal", `{"workload":"wordcount","num_objects":1,"object_bytes":1,"objective":{}}`, 400},
		{"infeasible zero budget", `{"workload":"wordcount","num_objects":10,"object_bytes":1048576,"objective":{"goal":"min_time","budget_usd":0}}`, 422},
	}
	for _, tc := range cases {
		resp, body := post(t, srv.URL()+"/v1/plan", "acme", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var env api.ErrorResponse
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == "" {
			t.Errorf("%s: bad error envelope %q", tc.name, body)
		}
	}
}

// TestRateLimit429Deterministic drives the full HTTP stack on a virtual
// clock: the third request must be the deterministic 429, with both the
// rounded Retry-After header and the precise retry_after_ms.
func TestRateLimit429Deterministic(t *testing.T) {
	clk := newVclock()
	srv := startReal(t, Config{
		Quota: TenantQuota{Rate: 1, Burst: 2, MaxInFlight: 4},
		Now:   clk.now,
	})
	for i := 0; i < 2; i++ {
		resp, body := post(t, srv.URL()+"/v1/plan", "acme", planBody)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, srv.URL()+"/v1/plan", "acme", planBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
	var env api.ErrorResponse
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.RetryAfterMS != 1000 {
		t.Fatalf("envelope %q, want retry_after_ms 1000", body)
	}
	// An unrelated tenant is admitted: buckets are independent.
	if resp, body := post(t, srv.URL()+"/v1/plan", "globex", planBody); resp.StatusCode != 200 {
		t.Fatalf("other tenant: status %d (%s)", resp.StatusCode, body)
	}
	// The refill is on the virtual clock, not the wall.
	clk.advance(time.Second)
	if resp, body := post(t, srv.URL()+"/v1/plan", "acme", planBody); resp.StatusCode != 200 {
		t.Fatalf("post-refill: status %d (%s)", resp.StatusCode, body)
	}
}

// sseFrames reads an SSE stream to EOF and returns each frame's data
// payload.
func sseFrames(t *testing.T, rd io.Reader) []string {
	t.Helper()
	var frames []string
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			frames = append(frames, data)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("sse read: %v", err)
	}
	return frames
}

// TestFrontierStreamMatchesFinal is the streaming acceptance gate: the
// SSE form delivers at least 3 anytime snapshots, the last is final, and
// its bytes equal the ?stream=0 response for the same request.
func TestFrontierStreamMatchesFinal(t *testing.T) {
	srv := startReal(t, Config{})
	q := "workload=wordcount&objects=10&object_bytes=1048576&size=8"

	resp, err := http.Get(srv.URL() + "/v1/frontier?" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := sseFrames(t, resp.Body)
	if len(frames) < 3 {
		t.Fatalf("streamed %d snapshots, want >= 3", len(frames))
	}
	var last api.FrontierUpdate
	if err := json.Unmarshal([]byte(frames[len(frames)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !last.Final || len(last.Points) == 0 {
		t.Fatalf("last frame not a final frontier: %s", frames[len(frames)-1])
	}

	nresp, body := func() (*http.Response, string) {
		r, err := http.Get(srv.URL() + "/v1/frontier?" + q + "&stream=0")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, strings.TrimRight(string(b), "\n")
	}()
	if nresp.StatusCode != 200 {
		t.Fatalf("stream=0 status %d: %s", nresp.StatusCode, body)
	}
	if body != frames[len(frames)-1] {
		t.Fatalf("final SSE frame != non-streaming body:\nsse  %s\njson %s",
			frames[len(frames)-1], body)
	}
}

// TestBatchMixedValidation: invalid slots carry their own code in place,
// valid slots plan, and indexes stay aligned.
func TestBatchMixedValidation(t *testing.T) {
	srv := startReal(t, Config{})
	body := `{"requests":[
		{"workload":"wordcount","num_objects":10,"object_bytes":1048576,"objective":{"goal":"min_time","budget_usd":1}},
		{"workload":"nope","num_objects":1,"object_bytes":1,"objective":{"goal":"min_time"}},
		{"workload":"sort","num_objects":10,"object_bytes":1048576,"objective":{"goal":"min_cost","deadline":"10m"}}
	]}`
	resp, got := post(t, srv.URL()+"/v1/plan/batch", "acme", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	var br api.PlanBatchResponse
	if err := json.Unmarshal([]byte(got), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	if br.Results[0].Plan == nil || br.Results[0].Error != "" {
		t.Fatalf("slot 0: %+v", br.Results[0])
	}
	if br.Results[1].Plan != nil || br.Results[1].Code != 400 {
		t.Fatalf("slot 1: %+v", br.Results[1])
	}
	if br.Results[2].Plan == nil {
		t.Fatalf("slot 2: %+v", br.Results[2])
	}
}

// TestExecuteSettlesTenantSLO: execute=true runs the plan under a QoS
// monitor and the outcome lands in the caller's SLO row.
func TestExecuteSettlesTenantSLO(t *testing.T) {
	srv := startReal(t, Config{})
	body := `{"workload":"wordcount","num_objects":10,"object_bytes":1048576,"objective":{"goal":"min_time","budget_usd":1},"execute":true}`
	resp, got := post(t, srv.URL()+"/v1/plan", "acme", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get(api.CacheHeader); h != "bypass" {
		t.Fatalf("executed request cache header = %q, want bypass", h)
	}
	var pr api.PlanResponse
	if err := json.Unmarshal([]byte(got), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Run == nil || pr.Run.MeasuredJCTSeconds <= 0 {
		t.Fatalf("run outcome missing: %s", got)
	}

	sresp, sbody := func() (*http.Response, string) {
		r, err := http.Get(srv.URL() + "/v1/tenants/acme/slo")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, string(b)
	}()
	if sresp.StatusCode != 200 {
		t.Fatalf("slo status %d: %s", sresp.StatusCode, sbody)
	}
	var slo api.TenantSLOResponse
	if err := json.Unmarshal([]byte(sbody), &slo); err != nil {
		t.Fatal(err)
	}
	if slo.Tenant != "acme" || slo.Runs != 1 || len(slo.Entries) != 1 {
		t.Fatalf("slo = %s", sbody)
	}
	if slo.Entries[0].Job != "wordcount" {
		t.Fatalf("ledger job = %q, want wordcount", slo.Entries[0].Job)
	}
	// Another tenant sees an empty slice, not acme's rows.
	r2, b2 := func() (*http.Response, string) {
		r, err := http.Get(srv.URL() + "/v1/tenants/globex/slo")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		return r, string(b)
	}()
	var other api.TenantSLOResponse
	if err := json.Unmarshal([]byte(b2), &other); err != nil || r2.StatusCode != 200 {
		t.Fatalf("globex slo: %d %s", r2.StatusCode, b2)
	}
	if other.Runs != 0 || len(other.Entries) != 0 {
		t.Fatalf("tenant isolation broken: %s", b2)
	}
}

// stubService scripts request timing so the drain test controls exactly
// when an in-flight request completes.
type stubService struct {
	started chan struct{} // closed when the first Plan enters
	release chan struct{} // Plan blocks until this closes
	once    sync.Once
}

func (s *stubService) Plan(ctx context.Context, req *api.PlanRequest) (*api.PlanResponse, error) {
	s.once.Do(func() { close(s.started) })
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &api.PlanResponse{Solver: "stub"}, nil
}

func (s *stubService) PlanBatch(context.Context, *api.PlanBatchRequest) (*api.PlanBatchResponse, error) {
	return &api.PlanBatchResponse{}, nil
}

func (s *stubService) Frontier(context.Context, *api.FrontierRequest, func(api.FrontierUpdate)) (*api.FrontierResponse, error) {
	return &api.FrontierResponse{}, nil
}

func (s *stubService) TenantSLO(context.Context, *api.TenantSLORequest) (*api.TenantSLOResponse, error) {
	return &api.TenantSLOResponse{}, nil
}

// TestGracefulShutdownDrains is the drain gate: Shutdown lets the
// in-flight request finish (200, not a reset), rejects new work with
// 503 while draining, and only then returns.
func TestGracefulShutdownDrains(t *testing.T) {
	stub := &stubService{started: make(chan struct{}), release: make(chan struct{})}
	srv := New(Config{Service: stub, Quota: TenantQuota{MaxInFlight: 4}})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	inflight := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		resp, err := http.Post(srv.URL()+"/v1/plan", "application/json", strings.NewReader(planBody))
		if err != nil {
			inflight <- struct {
				code int
				body string
			}{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- struct {
			code int
			body string
		}{resp.StatusCode, string(b)}
	}()
	<-stub.started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Once draining, new requests are refused up front with 503.
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Post(srv.URL()+"/v1/plan", "application/json", strings.NewReader(planBody))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
			t.Fatalf("request during drain: status %d, want 503", code)
		}
		select {
		case <-deadline:
			t.Fatal("drain gate never rejected new work")
		case <-time.After(5 * time.Millisecond):
		}
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	default:
	}

	close(stub.release)
	got := <-inflight
	if got.code != 200 || !strings.Contains(got.body, "stub") {
		t.Fatalf("in-flight request: %d %q, want a completed 200", got.code, got.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestConcurrentTenantsHammer is the -race gate: >= 4 tenants drive a
// mixed endpoint workload through one server concurrently.
func TestConcurrentTenantsHammer(t *testing.T) {
	srv := startReal(t, Config{
		Quota: TenantQuota{Rate: 1000, Burst: 1000, MaxInFlight: 2, MaxQueue: 64},
	})
	const tenants, perTenant = 4, 6
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", tn)
			for i := 0; i < perTenant; i++ {
				switch i % 3 {
				case 0:
					resp, body := post(t, srv.URL()+"/v1/plan", tenant, planBody)
					if resp.StatusCode != 200 {
						t.Errorf("%s plan %d: %d %s", tenant, i, resp.StatusCode, body)
					}
				case 1:
					r, err := http.Get(srv.URL() + "/v1/frontier?workload=wordcount&objects=10&object_bytes=1048576&size=4&stream=0&tenant=" + tenant)
					if err != nil {
						t.Errorf("%s frontier: %v", tenant, err)
						continue
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != 200 {
						t.Errorf("%s frontier %d: %d", tenant, i, r.StatusCode)
					}
				default:
					r, err := http.Get(srv.URL() + "/v1/tenants/" + tenant + "/slo")
					if err != nil {
						t.Errorf("%s slo: %v", tenant, err)
						continue
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != 200 {
						t.Errorf("%s slo %d: %d", tenant, i, r.StatusCode)
					}
				}
			}
		}(tn)
	}
	wg.Wait()
	// Every tenant's requests were accounted under its own label.
	tel := srv.Registry()
	for tn := 0; tn < tenants; tn++ {
		name := telemetry.LabelSeries(telemetry.MServerTenantRequests, "tenant", fmt.Sprintf("tenant-%d", tn))
		if got := tel.Counter(name).Value(); got != perTenant {
			t.Errorf("tenant-%d accounted %d requests, want %d", tn, got, perTenant)
		}
	}
}
