// Package server is Astra's planning-as-a-service control plane: a
// long-running, gracefully-shutdownable HTTP/JSON front end that serves
// many concurrent tenants from one process-wide pair of planning caches.
//
// The package is layered gRPC-style: a Service interface with typed
// request/response structs (internal/api) carries the semantics, and the
// HTTP layer (http.go) only translates — parse, admit, cache, encode —
// so a proto surface can be bolted onto the same Service later without
// touching planning code.
//
// Cross-cutting layers, outermost first:
//
//	drain gate    503 once Shutdown begins; in-flight requests complete
//	admission     per-tenant token bucket + in-flight cap + bounded queue
//	              (deterministic 429 with Retry-After)
//	response      TTL'd LRU of rendered bodies keyed by canonical request
//	cache         fingerprint — a warm repeat never touches the search
//	service       astra.Plan / PlanBatch / Frontier / qos.Ledger over the
//	              shared template + prediction caches
package server

import (
	"context"

	"astra"
	"astra/internal/api"
	"astra/internal/loadgen"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/qos"
	"astra/internal/telemetry"
)

// Service is the typed planning surface the HTTP layer fronts. Frontier
// additionally streams anytime updates through observe (nil for
// non-streaming callers); the returned response's Final update is
// identical to the last observed one.
type Service interface {
	Plan(ctx context.Context, req *api.PlanRequest) (*api.PlanResponse, error)
	PlanBatch(ctx context.Context, req *api.PlanBatchRequest) (*api.PlanBatchResponse, error)
	Frontier(ctx context.Context, req *api.FrontierRequest, observe func(api.FrontierUpdate)) (*api.FrontierResponse, error)
	TenantSLO(ctx context.Context, req *api.TenantSLORequest) (*api.TenantSLOResponse, error)
}

// ServiceConfig wires a planning service. Zero-valued fields default to
// the process-wide shared caches, a fresh telemetry registry, a fresh
// SLO ledger, the Auto solver, and serial per-request searches (the
// server's concurrency comes from concurrent requests, not from fanning
// one request across every core).
type ServiceConfig struct {
	Templates *optimizer.TemplateCache
	Cache     *model.PredictionCache
	Tel       *telemetry.Registry
	Ledger    *qos.Ledger
	// Solver is the default search strategy for requests that name none.
	Solver optimizer.Solver
	// Parallelism bounds each request's inner search pool (0 is forced
	// to 1; a shared service must not let one tenant's plan occupy every
	// core).
	Parallelism int
	// SLOFactor is the default deadline multiple for executed requests
	// that name none (<= 0: 1.05).
	SLOFactor float64
}

type service struct {
	cfg ServiceConfig
	tc  *optimizer.TemplateCache
	pc  *model.PredictionCache
	tel *telemetry.Registry
	led *qos.Ledger
}

// NewService builds the production Service over the astra public API.
func NewService(cfg ServiceConfig) Service {
	tc, pc := cfg.Templates, cfg.Cache
	if tc == nil && pc == nil {
		tc, pc = astra.SharedCaches()
	} else {
		if tc == nil {
			tc = optimizer.NewTemplateCache(0)
		}
		if pc == nil {
			pc = model.NewPredictionCache()
		}
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.New()
	}
	led := cfg.Ledger
	if led == nil {
		led = qos.NewLedger()
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.SLOFactor <= 0 {
		cfg.SLOFactor = 1.05
	}
	return &service{cfg: cfg, tc: tc, pc: pc, tel: tel, led: led}
}

// planOpts is the option set every planning call shares.
func (s *service) planOpts(solver optimizer.Solver) []astra.PlanOption {
	return []astra.PlanOption{
		astra.WithSolver(solver),
		astra.WithParallelism(s.cfg.Parallelism),
		astra.WithTemplateCache(s.tc),
		astra.WithPlanCache(s.pc),
		astra.WithTelemetry(s.tel),
	}
}

// solverOr applies the service default when the request named none.
func (s *service) solverOr(reqSolver optimizer.Solver, named string) optimizer.Solver {
	if named == "" {
		return s.cfg.Solver
	}
	return reqSolver
}

func (s *service) Plan(ctx context.Context, req *api.PlanRequest) (*api.PlanResponse, error) {
	job, obj, solver, err := req.Resolve()
	if err != nil {
		return nil, err
	}
	solver = s.solverOr(solver, req.Solver)
	plan, err := astra.PlanContext(ctx, job, obj, s.planOpts(solver)...)
	if err != nil {
		return nil, err
	}
	resp := planResponse(plan)
	if req.Execute {
		run, err := s.execute(req, job, plan)
		if err != nil {
			return nil, err
		}
		resp.Run = run
	}
	s.publish()
	return resp, nil
}

// execute runs the chosen plan on a fresh simulated platform under a
// QoS monitor, settling the outcome into the ledger under the caller's
// tenant so GET /v1/tenants/{id}/slo reflects it.
func (s *service) execute(req *api.PlanRequest, job astra.Job, plan *astra.ExecutionPlan) (*api.RunOutcome, error) {
	factor := req.SLOFactor
	if factor <= 0 {
		factor = s.cfg.SLOFactor
	}
	tenant := api.ResolveTenant("", req.Tenant)
	params := model.DefaultParams(job)
	rep, mon, err := loadgen.ExecuteMonitoredAs(params, tenant, req.Workload, plan.Config, factor, s.led)
	if err != nil {
		return nil, err
	}
	s.led.Publish(s.tel)
	snap := mon.Snapshot()
	return &api.RunOutcome{
		MeasuredJCTSeconds: rep.JCT.Seconds(),
		MeasuredCostUSD:    float64(rep.Cost.Total()),
		DeadlineSeconds:    snap.Deadline.Seconds(),
		Attained:           mon.State() != qos.Breached,
	}, nil
}

// PlanBatch maps the wire batch onto astra.PlanBatch: slots that fail
// validation get their taxonomy code in place, valid slots plan through
// the shared concurrent batch front end, and indexes stay aligned
// throughout. The batch plans with the service's default solver —
// per-slot solver choice is a Plan-endpoint affordance.
func (s *service) PlanBatch(ctx context.Context, req *api.PlanBatchRequest) (*api.PlanBatchResponse, error) {
	out := &api.PlanBatchResponse{Results: make([]api.BatchResult, len(req.Requests))}
	var valid []astra.BatchRequest
	var slots []int
	for i := range req.Requests {
		job, obj, _, err := req.Requests[i].Resolve()
		if err != nil {
			out.Results[i] = api.BatchResult{Error: err.Error(), Code: api.ErrorCode(err)}
			continue
		}
		valid = append(valid, astra.BatchRequest{Job: job, Objective: obj})
		slots = append(slots, i)
	}
	if len(valid) > 0 {
		results, err := astra.PlanBatch(ctx, valid,
			astra.WithSolver(s.cfg.Solver),
			astra.WithTemplateCache(s.tc),
			astra.WithPlanCache(s.pc),
			astra.WithTelemetry(s.tel))
		if err != nil {
			return nil, err
		}
		for j, r := range results {
			i := slots[j]
			if r.Err != nil {
				out.Results[i] = api.BatchResult{Error: r.Err.Error(), Code: api.ErrorCode(r.Err)}
				continue
			}
			out.Results[i] = api.BatchResult{Plan: planResponse(r.Plan)}
		}
	}
	s.publish()
	return out, nil
}

func (s *service) Frontier(ctx context.Context, req *api.FrontierRequest, observe func(api.FrontierUpdate)) (*api.FrontierResponse, error) {
	job, err := req.Resolve()
	if err != nil {
		return nil, err
	}
	var last api.FrontierUpdate
	fopts := []astra.FrontierOption{
		astra.WithParallelism(s.cfg.Parallelism),
		astra.WithTemplateCache(s.tc),
		astra.WithPlanCache(s.pc),
		astra.WithTelemetry(s.tel),
		astra.WithFrontierObserver(func(u astra.FrontierUpdate) {
			wire := frontierWire(u)
			last = wire
			if observe != nil {
				observe(wire)
			}
		}),
	}
	if req.Size > 0 {
		fopts = append(fopts, astra.WithFrontierSize(req.Size))
	}
	if _, err := astra.FrontierContext(ctx, job, fopts...); err != nil {
		return nil, err
	}
	s.publish()
	return &api.FrontierResponse{Final: last}, nil
}

func (s *service) TenantSLO(_ context.Context, req *api.TenantSLORequest) (*api.TenantSLOResponse, error) {
	snap := s.led.Snapshot()
	resp := &api.TenantSLOResponse{Tenant: req.Tenant}
	for _, e := range snap.Entries {
		if e.Tenant != req.Tenant {
			continue
		}
		resp.Runs += e.Runs
		resp.Attained += e.Attained
		resp.Breached += e.Breached
		resp.Entries = append(resp.Entries, e)
	}
	return resp, nil
}

// publish reconciles the shared caches' cumulative totals onto the
// registry so every /metrics scrape sees cross-tenant cache traffic.
func (s *service) publish() {
	astra.PublishCacheStats(s.tel, s.tc, s.pc)
}

// planResponse renders a plan into its deterministic wire form.
func planResponse(p *astra.ExecutionPlan) *api.PlanResponse {
	return &api.PlanResponse{
		Config:              p.Config,
		PredictedJCTSeconds: p.Exact.JCT().Seconds(),
		PredictedCostUSD:    float64(p.Exact.TotalCost()),
		Solver:              p.Search.Solver.String(),
		Search: api.SearchSummary{
			CalibrationRounds: p.Search.CalibrationRounds,
			CacheHits:         p.Search.CacheHits,
			CacheMisses:       p.Search.CacheMisses,
			DAGBuilds:         p.Search.DAGBuilds,
		},
		Explain: p.Explain(),
	}
}

// frontierWire renders one anytime update into its wire form.
func frontierWire(u astra.FrontierUpdate) api.FrontierUpdate {
	wire := api.FrontierUpdate{
		Phase: u.Phase,
		Final: u.Final,
		Stats: api.FrontierStats{
			Phases:      u.Stats.Phases,
			Searches:    u.Stats.Searches,
			Pruned:      u.Stats.Pruned,
			Evaluations: u.Stats.Evaluations,
		},
	}
	for _, pt := range u.Points {
		wire.Points = append(wire.Points, api.FrontierPoint{
			JCTSeconds: pt.Pred.TotalSec(),
			CostUSD:    float64(pt.Pred.TotalCost()),
			Config:     pt.Config,
		})
	}
	return wire
}
