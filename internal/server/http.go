package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"astra/internal/api"
	"astra/internal/obs"
	"astra/internal/telemetry"
)

// Config wires one control-plane server.
type Config struct {
	// Service handles the typed requests (NewService for production;
	// tests substitute stubs to script timing).
	Service Service
	// Telemetry receives astra_server_* counters and gauges. Left nil a
	// private registry is created (Obs should then be left nil too, or
	// /metrics will scrape a different registry than the server counts
	// into).
	Telemetry *telemetry.Registry
	// Quota is the per-tenant admission policy. The zero value admits
	// everything (unlimited rate, 1 in-flight, no queue) — set it.
	Quota TenantQuota
	// CacheTTL and CacheEntries bound the response cache (defaults 60s,
	// 1024).
	CacheTTL     time.Duration
	CacheEntries int
	// Obs, when non-nil, is mounted on the same mux: /metrics, /healthz,
	// /qos, /events, /explain, /audit and /debug/pprof/* come for free.
	// The server owns shutting it down.
	Obs *obs.Server
	// Now is the clock admission and the response cache run on (nil:
	// time.Now). Tests inject a virtual clock for deterministic 429s.
	Now func() time.Time
}

// Server is the control-plane HTTP front end. Construct with New, mount
// via Handler or Start, and always Shutdown when done.
type Server struct {
	svc   Service
	reg   *telemetry.Registry
	adm   *Admission
	cache *RespCache
	obs   *obs.Server

	mux       *http.ServeMux
	srv       *http.Server
	ln        net.Listener
	serveDone chan struct{}

	closing   chan struct{}
	closeOnce sync.Once

	// drainMu serializes the draining flag against in-flight accounting:
	// handlers take the read side around (check, Add), Shutdown takes the
	// write side to flip the flag, so inflight.Wait() can never race a
	// late Add.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup
}

// New builds a server over svc.
func New(cfg Config) *Server {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Server{
		svc:     cfg.Service,
		reg:     reg,
		obs:     cfg.Obs,
		mux:     http.NewServeMux(),
		closing: make(chan struct{}),
	}
	s.adm = NewAdmission(cfg.Quota, reg, s.closing, cfg.Now)
	s.cache = NewRespCache(cfg.CacheEntries, cfg.CacheTTL, reg, cfg.Now)

	s.handle("POST /v1/plan", "/v1/plan", s.handlePlan)
	s.handle("POST /v1/plan/batch", "/v1/plan/batch", s.handleBatch)
	s.handle("GET /v1/frontier", "/v1/frontier", s.handleFrontier)
	s.handle("POST /v1/frontier", "/v1/frontier", s.handleFrontier)
	s.handle("GET /v1/tenants/{id}/slo", "/v1/tenants/slo", s.handleTenantSLO)
	if s.obs != nil {
		// Everything outside /v1/ falls through to the observability
		// plane: /metrics, /healthz, /qos, /events, /frontier (obs SSE),
		// /explain, /audit, /debug/pprof/*.
		s.mux.Handle("/", s.obs.Handler())
	}
	return s
}

// handle mounts one endpoint behind the per-endpoint request counter.
func (s *Server) handle(pattern, label string, h http.HandlerFunc) {
	counter := s.reg.Counter(telemetry.LabelSeries(telemetry.MServerRequests, "endpoint", label))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		counter.Inc()
		h(w, r)
	})
}

// Handler exposes the route table for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry the server counts into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Admission exposes the admission controller (tests inspect queue depth).
func (s *Server) Admission() *Admission { return s.adm }

// RespCache exposes the response cache (tests verify hit accounting).
func (s *Server) RespCache() *RespCache { return s.cache }

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.serveDone = make(chan struct{})
	go func() {
		defer close(s.serveDone)
		_ = s.srv.Serve(ln) // http.ErrServerClosed on Shutdown
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL is the server's base URL ("" before Start).
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Shutdown drains the control plane gracefully, in order: (1) the drain
// gate flips, so new requests get 503; (2) every in-flight plan — SSE
// frontier streams included — runs to completion (bounded by ctx); (3)
// the closing channel releases queued admission waiters; (4) the
// observability plane shuts down, closing its SSE clients cleanly; (5)
// the HTTP listener drains. Safe to call more than once, and without
// Start.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.closeOnce.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()

		drained := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}
		close(s.closing)
		if s.obs != nil {
			if oerr := s.obs.Shutdown(ctx); err == nil {
				err = oerr
			}
		}
	})
	if s.srv == nil {
		return err
	}
	if serr := s.srv.Shutdown(ctx); serr != nil && err == nil {
		err = serr
	}
	if s.serveDone != nil {
		select {
		case <-s.serveDone:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	return err
}

// enter registers one in-flight request; it reports false (and the
// caller must 503) once draining has begun.
func (s *Server) enter() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	env := api.ErrorResponse{Error: msg}
	if retryAfter > 0 {
		env.RetryAfterMS = int64((retryAfter + time.Millisecond - 1) / time.Millisecond)
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(env)
}

// admit runs the gauntlet every /v1 request passes: the drain gate, the
// tenant accounting counter, and admission control. It returns a nil
// ticket after writing the response when the request was turned away.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, tenant string) *Ticket {
	s.reg.Counter(telemetry.LabelSeries(telemetry.MServerTenantRequests, "tenant", tenant)).Inc()
	ticket, rej, err := s.adm.Admit(r.Context(), tenant)
	if rej != nil {
		s.reg.Counter(telemetry.LabelSeries(telemetry.MServerRejects, "tenant", tenant, "reason", rej.Reason)).Inc()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over quota (%s)", tenant, rej.Reason), rej.RetryAfter)
		return nil
	}
	if err != nil {
		// Context cancelled (client gone — nothing to write) or draining.
		if err == ErrDraining {
			writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		}
		return nil
	}
	return ticket
}

// finish stamps the out-of-band timing headers. Bodies stay
// byte-identical across cache hits; timing rides in headers only.
func finish(w http.ResponseWriter, queueWait, service time.Duration, cache string) {
	w.Header().Set(api.QueueHeader, strconv.FormatInt(queueWait.Nanoseconds(), 10))
	w.Header().Set(api.ServiceHeader, strconv.FormatInt(service.Nanoseconds(), 10))
	if cache != "" {
		w.Header().Set(api.CacheHeader, cache)
	}
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	}
	defer s.inflight.Done()

	req, err := api.DecodePlanRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tenant := api.ResolveTenant(r.Header.Get(api.TenantHeader), req.Tenant)
	req.Tenant = tenant
	ticket := s.admit(w, r, tenant)
	if ticket == nil {
		return
	}
	defer ticket.Release()

	// Executed requests have ledger side effects, so only pure planning
	// consults (and fills) the response cache.
	key := req.Fingerprint()
	if !req.Execute {
		if body := s.cache.Get(key); body != nil {
			finish(w, ticket.QueueWait, 0, "hit")
			writeJSONBytes(w, body)
			return
		}
	}
	t0 := time.Now()
	resp, err := s.svc.Plan(r.Context(), req)
	if err != nil {
		writeError(w, api.ErrorCode(err), err.Error(), 0)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	cacheState := "bypass"
	if !req.Execute {
		s.cache.Put(key, body)
		cacheState = "miss"
	}
	finish(w, ticket.QueueWait, time.Since(t0), cacheState)
	writeJSONBytes(w, body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	}
	defer s.inflight.Done()

	req, err := api.DecodePlanBatchRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tenant := api.ResolveTenant(r.Header.Get(api.TenantHeader), req.Tenant)
	req.Tenant = tenant
	ticket := s.admit(w, r, tenant)
	if ticket == nil {
		return
	}
	defer ticket.Release()

	t0 := time.Now()
	resp, err := s.svc.PlanBatch(r.Context(), req)
	if err != nil {
		writeError(w, api.ErrorCode(err), err.Error(), 0)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	finish(w, ticket.QueueWait, time.Since(t0), "bypass")
	writeJSONBytes(w, body)
}

// handleFrontier serves both forms of the frontier endpoint. The default
// is an SSE stream of anytime snapshots (id = 1-based update index, the
// final frame marked final:true); ?stream=0 returns only the final
// frontier as one JSON document whose bytes match the final SSE frame.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	}
	defer s.inflight.Done()

	var req *api.FrontierRequest
	var err error
	if r.Method == http.MethodPost {
		req, err = api.DecodeFrontierRequest(r.Body)
	} else {
		req, err = api.FrontierRequestFromQuery(r.URL.Query())
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	tenant := api.ResolveTenant(r.Header.Get(api.TenantHeader), req.Tenant)
	req.Tenant = tenant
	ticket := s.admit(w, r, tenant)
	if ticket == nil {
		return
	}
	defer ticket.Release()

	stream := true
	if v := r.URL.Query().Get("stream"); v == "0" || v == "false" {
		stream = false
	}
	if !stream {
		key := req.Fingerprint()
		if body := s.cache.Get(key); body != nil {
			finish(w, ticket.QueueWait, 0, "hit")
			writeJSONBytes(w, body)
			return
		}
		t0 := time.Now()
		resp, err := s.svc.Frontier(r.Context(), req, nil)
		if err != nil {
			writeError(w, api.ErrorCode(err), err.Error(), 0)
			return
		}
		body, err := json.Marshal(resp.Final)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		s.cache.Put(key, body)
		finish(w, ticket.QueueWait, time.Since(t0), "miss")
		writeJSONBytes(w, body)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set(api.QueueHeader, strconv.FormatInt(ticket.QueueWait.Nanoseconds(), 10))
	flusher, _ := w.(http.Flusher)
	seq := 0
	_, err = s.svc.Frontier(r.Context(), req, func(u api.FrontierUpdate) {
		b, merr := json.Marshal(u)
		if merr != nil {
			return
		}
		seq++
		fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, b)
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil && seq == 0 {
		// Nothing streamed yet: the error taxonomy still applies.
		writeError(w, api.ErrorCode(err), err.Error(), 0)
		return
	}
	if err != nil {
		// Mid-stream failure: surface as a terminal SSE comment.
		fmt.Fprintf(w, ": error %s\n\n", err)
	}
}

func (s *Server) handleTenantSLO(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	}
	defer s.inflight.Done()

	tenant := r.PathValue("id")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant id", 0)
		return
	}
	ticket := s.admit(w, r, tenant)
	if ticket == nil {
		return
	}
	defer ticket.Release()
	resp, err := s.svc.TenantSLO(r.Context(), &api.TenantSLORequest{Tenant: tenant})
	if err != nil {
		writeError(w, api.ErrorCode(err), err.Error(), 0)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	writeJSONBytes(w, body)
}
