package server

import (
	"fmt"
	"testing"
	"time"

	"astra/internal/telemetry"
)

func TestRespCacheHitMissAndTTL(t *testing.T) {
	clk := newVclock()
	c := NewRespCache(8, time.Minute, telemetry.New(), clk.now)

	if got := c.Get("k"); got != nil {
		t.Fatalf("cold Get = %q, want nil", got)
	}
	c.Put("k", []byte("body"))
	if got := string(c.Get("k")); got != "body" {
		t.Fatalf("warm Get = %q", got)
	}

	// One tick short of the TTL still hits; at the TTL the entry expires
	// and the expiry is accounted separately from plain misses.
	clk.advance(time.Minute - time.Nanosecond)
	if c.Get("k") == nil {
		t.Fatal("entry expired early")
	}
	clk.advance(time.Minute)
	if c.Get("k") != nil {
		t.Fatal("entry survived its TTL")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 1 expired / 0 entries", st)
	}
}

func TestRespCacheLRUEviction(t *testing.T) {
	clk := newVclock()
	c := NewRespCache(3, time.Hour, telemetry.New(), clk.now)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the eviction victim.
	if c.Get("k0") == nil {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", []byte{3})
	if c.Get("k1") != nil {
		t.Fatal("LRU victim k1 survived")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.Get(k) == nil {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 resident", st)
	}
}

func TestRespCachePutRefreshesTTL(t *testing.T) {
	clk := newVclock()
	c := NewRespCache(8, time.Minute, telemetry.New(), clk.now)
	c.Put("k", []byte("v1"))
	clk.advance(45 * time.Second)
	c.Put("k", []byte("v2"))
	clk.advance(45 * time.Second)
	if got := string(c.Get("k")); got != "v2" {
		t.Fatalf("refreshed entry = %q, want v2 still resident", got)
	}
}
