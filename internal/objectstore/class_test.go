package objectstore

import (
	"math"
	"testing"
	"time"

	"astra/internal/pricing"
	"astra/internal/simtime"
)

func TestCacheClassFasterTransfers(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{
		Bandwidth:      80 << 20,
		RequestLatency: 20 * time.Millisecond,
		Pricing:        pricing.AWS().Store,
	})
	store.CreateBucket("s3")
	store.SetBucketClass("cache", CacheClass())

	var slow, fast time.Duration
	err := sched.Run(func(p *simtime.Proc) {
		start := p.Now()
		if err := store.PutProfiled(p, "s3", "k", 80<<20); err != nil {
			t.Fatal(err)
		}
		slow = p.Now() - start
		start = p.Now()
		if err := store.PutProfiled(p, "cache", "k", 80<<20); err != nil {
			t.Fatal(err)
		}
		fast = p.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	// 80 MiB: ~1.02s on the default class vs ~0.1s on the cache tier.
	if fast*5 > slow {
		t.Fatalf("cache transfer %v not much faster than default %v", fast, slow)
	}
}

func TestClassRequestPricing(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{Bandwidth: 1 << 30, Pricing: pricing.AWS().Store})
	store.SetBucketClass("cache", CacheClass()) // zero request fees
	store.CreateBucket("s3")
	err := sched.Run(func(p *simtime.Proc) {
		for i := 0; i < 100; i++ {
			if err := store.PutProfiled(p, "cache", "k", 1); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Get(p, "cache", "k"); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.PutProfiled(p, "s3", "k", 1); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bill := store.Bill()
	wantReq := pricing.AWS().Store.RequestCost(0, 1) // only the s3 PUT bills
	if math.Abs(float64(bill.Requests-wantReq)) > 1e-12 {
		t.Fatalf("requests = %v, want %v (cache requests are free)", bill.Requests, wantReq)
	}
}

func TestClassProvisionedStoragePricing(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{Bandwidth: 1 << 40, Pricing: pricing.AWS().Store})
	cache := CacheClass()
	store.SetBucketClass("cache", cache)
	err := sched.Run(func(p *simtime.Proc) {
		store.SeedProfiled("cache", "k", 1<<30) // 1 GiB
		p.Sleep(time.Hour)                      // held one hour
		if err := store.Delete(p, "cache", "k"); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bill := store.Bill()
	// 1 GiB x 1 hour at the GB-hour rate.
	want := float64(cache.StoragePerGBHour)
	if math.Abs(float64(bill.Storage)-want) > want*1e-6 {
		t.Fatalf("storage = %v, want ~%v", bill.Storage, want)
	}
}

func TestCacheStorageCostsMoreThanS3(t *testing.T) {
	// The Locus tradeoff: the cache tier is far more expensive at rest.
	def := pricing.AWS().Store
	byteSeconds := float64(int64(10)<<30) * 3600 // 10 GiB-hours
	cache := CacheClass().storageCost(byteSeconds, def)
	s3 := def.StorageCost(byteSeconds)
	if cache < s3*100 {
		t.Fatalf("cache storage %v should dwarf S3 %v", cache, s3)
	}
}

func TestBucketMetricsScoped(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{Bandwidth: 1 << 30, Pricing: pricing.AWS().Store})
	store.CreateBucket("a")
	store.CreateBucket("b")
	err := sched.Run(func(p *simtime.Proc) {
		if err := store.PutProfiled(p, "a", "k", 5); err != nil {
			t.Fatal(err)
		}
		if err := store.PutProfiled(p, "b", "k", 7); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Get(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := store.BucketMetrics("a"); m.Puts != 1 || m.Gets != 0 {
		t.Fatalf("a metrics = %+v", m)
	}
	if m := store.BucketMetrics("b"); m.Puts != 1 || m.Gets != 1 || m.BytesOut != 7 {
		t.Fatalf("b metrics = %+v", m)
	}
	if m := store.BucketMetrics("missing"); m != (Metrics{}) {
		t.Fatalf("missing bucket metrics = %+v", m)
	}
	if g := store.Metrics(); g.Puts != 2 || g.Gets != 1 {
		t.Fatalf("global metrics = %+v", g)
	}
	if m := store.DefaultClassMetrics(); m.Puts != 2 {
		t.Fatalf("default-class metrics = %+v", m)
	}
}

func TestClassLatencyOverride(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{
		Bandwidth:      1 << 40,
		RequestLatency: 50 * time.Millisecond,
		Pricing:        pricing.AWS().Store,
	})
	store.SetBucketClass("cache", CacheClass()) // 0.5 ms latency
	var elapsed time.Duration
	err := sched.Run(func(p *simtime.Proc) {
		start := p.Now()
		if err := store.PutProfiled(p, "cache", "k", 0); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 500*time.Microsecond {
		t.Fatalf("cache latency = %v, want 0.5ms", elapsed)
	}
}
