// Package objectstore implements the S3 substitute: an in-memory,
// virtual-time-aware object store with GET/PUT/LIST/DELETE semantics,
// bandwidth-charged transfers, request metering and storage-duration
// accounting.
//
// Transfers charge virtual time to the calling process at the configured
// per-connection bandwidth (the B constant in the paper's models), or —
// when a shared-bandwidth pool is attached — under processor sharing
// across all concurrent transfers. Every request is counted per bucket so
// the exact bill (Eq. 10-11) can be computed after a run.
//
// Buckets may carry a storage Class overriding bandwidth, latency and
// pricing: the fast ephemeral tier (Redis/ElastiCache, as in Pocket and
// Locus) for intermediate data lives alongside the default S3-like class
// in one store.
//
// Objects come in two flavors: concrete (real bytes, used by the examples
// and correctness tests) and profiled (size-only metadata, used to run
// 100 GB workloads without materializing 100 GB).
package objectstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"astra/internal/flight"
	"astra/internal/pricing"
	"astra/internal/simtime"
	"astra/internal/telemetry"
)

// Errors returned by store operations.
var (
	ErrNoSuchBucket = errors.New("objectstore: no such bucket")
	ErrNoSuchKey    = errors.New("objectstore: no such key")
	ErrTooLarge     = errors.New("objectstore: object exceeds size limit")
)

// Op identifies a request class for metering and fault injection.
type Op string

// Request classes. List and Head bill as GET-class requests, matching S3;
// Copy bills as a PUT-class request (S3 CopyObject).
const (
	OpGet    Op = "GET"
	OpPut    Op = "PUT"
	OpList   Op = "LIST"
	OpHead   Op = "HEAD"
	OpDelete Op = "DELETE"
	OpCopy   Op = "COPY"
)

// Object is a stored value. Profiled objects carry only a size; their Data
// is nil and consumers must treat them as opaque payloads of Size bytes.
type Object struct {
	Key      string
	Data     []byte
	Size     int64
	Profiled bool
	Created  simtime.Time
}

// Class is a storage class: a bucket-level override of transfer and
// pricing characteristics. It models fast ephemeral stores for
// intermediate data — the Redis/ElastiCache tier of Pocket and Locus that
// the paper's discussion section contrasts with S3 — alongside the
// default object-store class.
type Class struct {
	// Name labels the class in bills.
	Name string
	// Bandwidth is the per-connection transfer rate (bytes/second).
	Bandwidth float64
	// RequestLatency is the per-request overhead (sub-millisecond for an
	// in-memory tier).
	RequestLatency time.Duration
	// PerPut and PerGet price requests (often zero for provisioned
	// tiers).
	PerPut, PerGet pricing.USD
	// StoragePerGBHour prices occupancy for provisioned tiers; if zero
	// the store's default per-GB-month rate applies.
	StoragePerGBHour pricing.USD
}

// CacheClass returns an ElastiCache-like in-memory tier: an order of
// magnitude more per-connection bandwidth, negligible request latency, no
// request fees, but provisioned pricing around $0.05 per GB-hour.
func CacheClass() Class {
	return Class{
		Name:             "cache",
		Bandwidth:        800 << 20,
		RequestLatency:   500 * time.Microsecond,
		StoragePerGBHour: 0.05,
	}
}

// storageCost prices byteSeconds of occupancy under the class.
func (c Class) storageCost(byteSeconds float64, def pricing.ObjectStore) pricing.USD {
	if c.StoragePerGBHour > 0 {
		gbHours := byteSeconds / (1 << 30) / 3600
		return c.StoragePerGBHour * pricing.USD(gbHours)
	}
	return def.StorageCost(byteSeconds)
}

type bucket struct {
	name    string
	objects map[string]*Object
	class   *Class // nil: the store's default class

	// Per-bucket accounting, so mixed-class jobs bill correctly.
	metrics     Metrics
	curBytes    int64
	lastUpdate  simtime.Time
	byteSeconds float64
}

// Metrics is a snapshot of request counters and transferred bytes.
type Metrics struct {
	Gets, Puts, Lists, Heads, Deletes, Copies int64
	BytesIn, BytesOut                         int64
}

// GetClass reports all GET-billed requests (GET + LIST + HEAD).
func (m Metrics) GetClass() int64 { return m.Gets + m.Lists + m.Heads }

// PutClass reports all PUT-billed requests (PUT + COPY; DELETE is free on
// S3).
func (m Metrics) PutClass() int64 { return m.Puts + m.Copies }

// Sub returns the counter deltas m - o, for scoping a phase's requests.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		Gets: m.Gets - o.Gets, Puts: m.Puts - o.Puts,
		Lists: m.Lists - o.Lists, Heads: m.Heads - o.Heads,
		Deletes: m.Deletes - o.Deletes, Copies: m.Copies - o.Copies,
		BytesIn: m.BytesIn - o.BytesIn, BytesOut: m.BytesOut - o.BytesOut,
	}
}

// Injector decides request-level fault injection: a non-nil OpFault return
// aborts the operation with that error before any state change, metering
// or time charge. Implementations must be deterministic functions of the
// request identity (see internal/chaos).
type Injector interface {
	OpFault(op Op, bucket, key string) error
}

// FaultFunc lets tests inject request failures. A non-nil return aborts
// the operation with that error before any state change or time charge.
// It is the legacy hook; SetFault wraps it into the Injector interface.
type FaultFunc func(op Op, bucket, key string) error

// faultFuncInjector adapts the legacy FaultFunc hook to Injector.
type faultFuncInjector struct{ f FaultFunc }

func (i faultFuncInjector) OpFault(op Op, bucket, key string) error { return i.f(op, bucket, key) }

// Config parameterizes a Store.
type Config struct {
	// Bandwidth is the per-connection transfer rate in bytes per second
	// (the paper's B). Required unless SharedBandwidth is set.
	Bandwidth float64
	// SharedBandwidth, if positive, attaches a processor-sharing pool of
	// that many bytes/second shared across ALL concurrent default-class
	// transfers, replacing the fixed per-connection model.
	SharedBandwidth float64
	// RequestLatency is the fixed per-request overhead (first-byte
	// latency). Zero is allowed and keeps the store exactly on the
	// paper's size/B model.
	RequestLatency time.Duration
	// Pricing supplies the request/storage prices for Bill.
	Pricing pricing.ObjectStore
}

// Store is the simulated object store. All time-charging methods take the
// calling process; setup helpers (Seed*) are free and instantaneous.
type Store struct {
	sched  *simtime.Scheduler
	cfg    Config
	shared *simtime.PSResource

	buckets   map[string]*bucket
	metrics   Metrics
	inj       Injector
	injFaults int64
	tel       *telemetry.Registry
	rec       *flight.Recorder
}

// New creates a store bound to the scheduler's virtual clock.
func New(sched *simtime.Scheduler, cfg Config) *Store {
	if cfg.Bandwidth <= 0 && cfg.SharedBandwidth <= 0 {
		panic("objectstore: a positive Bandwidth or SharedBandwidth is required")
	}
	s := &Store{sched: sched, cfg: cfg, buckets: make(map[string]*bucket)}
	if cfg.SharedBandwidth > 0 {
		s.shared = sched.NewPSResource(cfg.SharedBandwidth)
	}
	return s
}

// SetFault installs (or clears, with nil) a fault-injection hook. It is a
// compatibility shim over SetInjector.
func (s *Store) SetFault(f FaultFunc) {
	if f == nil {
		s.SetInjector(nil)
		return
	}
	s.SetInjector(faultFuncInjector{f})
}

// SetInjector attaches a fault injector consulted before every request
// (nil detaches). An injector that injects nothing leaves the run
// bit-identical to one with no injector attached.
func (s *Store) SetInjector(inj Injector) { s.inj = inj }

// InjectedFaults reports how many requests an injector has aborted.
func (s *Store) InjectedFaults() int64 { return s.injFaults }

// SetTelemetry attaches a registry that mirrors the store's request and
// byte counters (telemetry.MStore*). Observe-only; nil detaches.
func (s *Store) SetTelemetry(reg *telemetry.Registry) { s.tel = reg }

// SetFlightRecorder attaches a flight recorder that receives every store
// request as a virtual-time interval event, attributed to the invocation
// whose handler issued it. Observe-only; nil detaches.
func (s *Store) SetFlightRecorder(rec *flight.Recorder) { s.rec = rec }

// record emits one completed request into the attached flight recorder.
func (s *Store) record(p *simtime.Proc, kind flight.Kind, bucket, key string, n int64, start simtime.Time) {
	if rec := s.rec; rec != nil {
		rec.Op(p, kind, bucket, key, n, start, s.sched.Now())
	}
}

// observe mirrors one request into the attached registry.
func (s *Store) observe(op Op, bytesIn, bytesOut int64) {
	tel := s.tel
	if tel == nil {
		return
	}
	switch op {
	case OpGet:
		tel.Counter(telemetry.MStoreGets).Inc()
	case OpPut:
		tel.Counter(telemetry.MStorePuts).Inc()
	case OpList:
		tel.Counter(telemetry.MStoreLists).Inc()
	case OpHead:
		tel.Counter(telemetry.MStoreHeads).Inc()
	case OpDelete:
		tel.Counter(telemetry.MStoreDeletes).Inc()
	case OpCopy:
		tel.Counter(telemetry.MStoreCopies).Inc()
	}
	if bytesIn > 0 {
		tel.Counter(telemetry.MStoreBytesIn).Add(bytesIn)
	}
	if bytesOut > 0 {
		tel.Counter(telemetry.MStoreBytesOut).Add(bytesOut)
	}
}

// Metrics returns the store-wide counter snapshot.
func (s *Store) Metrics() Metrics { return s.metrics }

// BucketMetrics returns one bucket's counters (zero value if absent).
func (s *Store) BucketMetrics(name string) Metrics {
	if b, ok := s.buckets[name]; ok {
		return b.metrics
	}
	return Metrics{}
}

// CreateBucket makes an empty bucket; it is idempotent and free.
func (s *Store) CreateBucket(name string) {
	if _, ok := s.buckets[name]; !ok {
		s.buckets[name] = &bucket{name: name, objects: make(map[string]*Object)}
	}
}

// SetBucketClass assigns a storage class to a bucket (creating it if
// needed). Assign before the bucket sees traffic: the class governs both
// transfer behavior and billing.
func (s *Store) SetBucketClass(name string, c Class) {
	s.CreateBucket(name)
	cc := c
	s.buckets[name].class = &cc
}

func (s *Store) bucket(name string) (*bucket, error) {
	b, ok := s.buckets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBucket, name)
	}
	return b, nil
}

// accrue folds the storage held since the last mutation into the bucket's
// byte-seconds accumulator. Must be called before curBytes changes.
func (b *bucket) accrue(now simtime.Time) {
	if now > b.lastUpdate {
		b.byteSeconds += float64(b.curBytes) * (now - b.lastUpdate).Seconds()
	}
	b.lastUpdate = now
}

// ByteSeconds reports cumulative storage occupancy across all buckets up
// to the current virtual instant.
func (s *Store) ByteSeconds() float64 {
	now := s.sched.Now()
	total := 0.0
	for _, b := range s.buckets {
		b.accrue(now)
		total += b.byteSeconds
	}
	return total
}

// StoredBytes reports the bytes currently at rest across all buckets.
func (s *Store) StoredBytes() int64 {
	var total int64
	for _, b := range s.buckets {
		total += b.curBytes
	}
	return total
}

// latencyFor resolves the per-request latency for a bucket.
func (s *Store) latencyFor(b *bucket) time.Duration {
	if b != nil && b.class != nil {
		return b.class.RequestLatency
	}
	return s.cfg.RequestLatency
}

// transfer charges p for moving n bytes between a function and a bucket.
func (s *Store) transfer(p *simtime.Proc, b *bucket, n int64) {
	if lat := s.latencyFor(b); lat > 0 {
		p.Sleep(lat)
	}
	if n <= 0 {
		return
	}
	if b != nil && b.class != nil && b.class.Bandwidth > 0 {
		sec := float64(n) / b.class.Bandwidth
		p.Sleep(time.Duration(sec * float64(time.Second)))
		return
	}
	if s.shared != nil {
		s.shared.Use(p, float64(n))
		return
	}
	sec := float64(n) / s.cfg.Bandwidth
	p.Sleep(time.Duration(sec * float64(time.Second)))
}

// checkFault consults the injector before a request touches state, meters
// or the clock. An injected fault is observe-recorded (chaos event and
// counter) but the faulted request itself stays unmetered and uncharged.
func (s *Store) checkFault(p *simtime.Proc, op Op, bucketName, key string) error {
	if s.inj == nil {
		return nil
	}
	err := s.inj.OpFault(op, bucketName, key)
	if err != nil {
		s.injFaults++
		s.tel.Counter(telemetry.MChaosFaults).Inc()
		s.tel.Counter(telemetry.MChaosStoreFaults).Inc()
		if rec := s.rec; rec != nil {
			rec.Emit(flight.Event{Kind: flight.KindChaosFault, Time: s.sched.Now(),
				Inv: rec.InvocationOf(p), Bucket: bucketName, Key: key,
				Name: string(op), Err: err.Error()})
		}
	}
	return err
}

// Put stores concrete bytes, charging the caller for the upload.
func (s *Store) Put(p *simtime.Proc, bucketName, key string, data []byte) error {
	return s.put(p, bucketName, key, &Object{Key: key, Data: data, Size: int64(len(data))})
}

// PutProfiled stores a size-only object, charging the caller as if size
// real bytes were uploaded.
func (s *Store) PutProfiled(p *simtime.Proc, bucketName, key string, size int64) error {
	if size < 0 {
		size = 0
	}
	return s.put(p, bucketName, key, &Object{Key: key, Size: size, Profiled: true})
}

func (s *Store) put(p *simtime.Proc, bucketName, key string, obj *Object) error {
	if err := s.checkFault(p, OpPut, bucketName, key); err != nil {
		return err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return err
	}
	if obj.Size > s.cfg.Pricing.MaxObjectBytes && s.cfg.Pricing.MaxObjectBytes > 0 {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, obj.Size)
	}
	t0 := s.sched.Now()
	s.transfer(p, b, obj.Size)
	s.metrics.Puts++
	s.metrics.BytesIn += obj.Size
	b.metrics.Puts++
	b.metrics.BytesIn += obj.Size
	s.observe(OpPut, obj.Size, 0)
	s.record(p, flight.KindStorePut, bucketName, key, obj.Size, t0)
	b.accrue(s.sched.Now())
	if old, ok := b.objects[key]; ok {
		b.curBytes -= old.Size
	}
	obj.Created = s.sched.Now()
	b.objects[key] = obj
	b.curBytes += obj.Size
	return nil
}

// Get retrieves an object, charging the caller for the download.
func (s *Store) Get(p *simtime.Proc, bucketName, key string) (*Object, error) {
	if err := s.checkFault(p, OpGet, bucketName, key); err != nil {
		return nil, err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	obj, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucketName, key)
	}
	t0 := s.sched.Now()
	s.transfer(p, b, obj.Size)
	s.metrics.Gets++
	s.metrics.BytesOut += obj.Size
	b.metrics.Gets++
	b.metrics.BytesOut += obj.Size
	s.observe(OpGet, 0, obj.Size)
	s.record(p, flight.KindStoreGet, bucketName, key, obj.Size, t0)
	return obj, nil
}

// Copy duplicates src under dst within a bucket, server-side (S3
// CopyObject): a PUT-class request charging only the request latency — no
// bytes move through the caller. Speculative execution's commit step uses
// it to publish a winning attempt's output under the task's final key.
func (s *Store) Copy(p *simtime.Proc, bucketName, src, dst string) error {
	if err := s.checkFault(p, OpCopy, bucketName, dst); err != nil {
		return err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return err
	}
	obj, ok := b.objects[src]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucketName, src)
	}
	t0 := s.sched.Now()
	if lat := s.latencyFor(b); lat > 0 {
		p.Sleep(lat)
	}
	s.metrics.Copies++
	b.metrics.Copies++
	s.observe(OpCopy, 0, 0)
	s.record(p, flight.KindStoreCopy, bucketName, dst, obj.Size, t0)
	b.accrue(s.sched.Now())
	if old, ok := b.objects[dst]; ok {
		b.curBytes -= old.Size
	}
	cp := *obj
	cp.Key = dst
	cp.Created = s.sched.Now()
	b.objects[dst] = &cp
	b.curBytes += cp.Size
	return nil
}

// Head returns object metadata without transferring the body. Bills as a
// GET-class request.
func (s *Store) Head(p *simtime.Proc, bucketName, key string) (*Object, error) {
	if err := s.checkFault(p, OpHead, bucketName, key); err != nil {
		return nil, err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	obj, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucketName, key)
	}
	t0 := s.sched.Now()
	if lat := s.latencyFor(b); lat > 0 {
		p.Sleep(lat)
	}
	s.metrics.Heads++
	b.metrics.Heads++
	s.observe(OpHead, 0, 0)
	s.record(p, flight.KindStoreHead, bucketName, key, 0, t0)
	meta := *obj
	meta.Data = nil
	return &meta, nil
}

// List returns the keys in a bucket with the given prefix, sorted. Bills
// as a GET-class request.
func (s *Store) List(p *simtime.Proc, bucketName, prefix string) ([]string, error) {
	if err := s.checkFault(p, OpList, bucketName, prefix); err != nil {
		return nil, err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return nil, err
	}
	t0 := s.sched.Now()
	if lat := s.latencyFor(b); lat > 0 {
		p.Sleep(lat)
	}
	s.metrics.Lists++
	b.metrics.Lists++
	s.observe(OpList, 0, 0)
	s.record(p, flight.KindStoreList, bucketName, prefix, 0, t0)
	var keys []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes an object. Deleting a missing key is a no-op, like S3.
func (s *Store) Delete(p *simtime.Proc, bucketName, key string) error {
	if err := s.checkFault(p, OpDelete, bucketName, key); err != nil {
		return err
	}
	b, err := s.bucket(bucketName)
	if err != nil {
		return err
	}
	t0 := s.sched.Now()
	if lat := s.latencyFor(b); lat > 0 {
		p.Sleep(lat)
	}
	s.metrics.Deletes++
	b.metrics.Deletes++
	s.observe(OpDelete, 0, 0)
	s.record(p, flight.KindStoreDelete, bucketName, key, 0, t0)
	if old, ok := b.objects[key]; ok {
		b.accrue(s.sched.Now())
		b.curBytes -= old.Size
		delete(b.objects, key)
	}
	return nil
}

// seed stores an object with no time charge and no request billing; it
// models data already resident before the job starts.
func (s *Store) seed(bucketName string, obj *Object) {
	s.CreateBucket(bucketName)
	b := s.buckets[bucketName]
	b.accrue(s.sched.Now())
	if old, ok := b.objects[obj.Key]; ok {
		b.curBytes -= old.Size
	}
	obj.Created = s.sched.Now()
	b.objects[obj.Key] = obj
	b.curBytes += obj.Size
}

// Seed stores concrete bytes with no time charge.
func (s *Store) Seed(bucketName, key string, data []byte) {
	s.seed(bucketName, &Object{Key: key, Data: data, Size: int64(len(data))})
}

// SeedProfiled stores a size-only object with no time charge.
func (s *Store) SeedProfiled(bucketName, key string, size int64) {
	s.seed(bucketName, &Object{Key: key, Size: size, Profiled: true})
}

// ObjectCount reports the number of objects in a bucket (0 if absent).
func (s *Store) ObjectCount(bucketName string) int {
	b, ok := s.buckets[bucketName]
	if !ok {
		return 0
	}
	return len(b.objects)
}

// Bill is the store's contribution to the job bill: request charges plus
// storage-duration charges, summed across buckets under each bucket's
// class.
type Bill struct {
	Requests pricing.USD
	Storage  pricing.USD
}

// Total returns the sum of the bill's components.
func (b Bill) Total() pricing.USD { return b.Requests + b.Storage }

// Bill prices the requests and storage occupancy recorded so far.
func (s *Store) Bill() Bill {
	now := s.sched.Now()
	var out Bill
	for _, b := range s.buckets {
		b.accrue(now)
		if b.class != nil {
			out.Requests += b.class.PerGet*pricing.USD(b.metrics.GetClass()) +
				b.class.PerPut*pricing.USD(b.metrics.PutClass())
			out.Storage += b.class.storageCost(b.byteSeconds, s.cfg.Pricing)
			continue
		}
		out.Requests += s.cfg.Pricing.RequestCost(b.metrics.GetClass(), b.metrics.PutClass())
		out.Storage += s.cfg.Pricing.StorageCost(b.byteSeconds)
	}
	return out
}

// DefaultClassMetrics sums counters over default-class buckets only —
// the requests billed at the sheet's S3 rates.
func (s *Store) DefaultClassMetrics() Metrics {
	var m Metrics
	for _, b := range s.buckets {
		if b.class == nil {
			m.Gets += b.metrics.Gets
			m.Puts += b.metrics.Puts
			m.Lists += b.metrics.Lists
			m.Heads += b.metrics.Heads
			m.Deletes += b.metrics.Deletes
			m.BytesIn += b.metrics.BytesIn
			m.BytesOut += b.metrics.BytesOut
		}
	}
	return m
}
