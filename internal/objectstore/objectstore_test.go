package objectstore

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"astra/internal/pricing"
	"astra/internal/simtime"
)

func newTestStore(sched *simtime.Scheduler) *Store {
	return New(sched, Config{
		Bandwidth: 1 << 20, // 1 MiB/s, so times are easy to reason about
		Pricing:   pricing.AWS().Store,
	})
}

func run(t *testing.T, body func(p *simtime.Proc, s *Store)) (time.Duration, *Store) {
	t.Helper()
	sched := simtime.NewScheduler()
	store := newTestStore(sched)
	if err := sched.Run(func(p *simtime.Proc) { body(p, store) }); err != nil {
		t.Fatal(err)
	}
	return sched.Now(), store
}

func TestPutGetRoundTrip(t *testing.T) {
	payload := []byte("hello astra")
	elapsed, store := run(t, func(p *simtime.Proc, s *Store) {
		s.CreateBucket("b")
		if err := s.Put(p, "b", "k", payload); err != nil {
			t.Fatal(err)
		}
		obj, err := s.Get(p, "b", "k")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(obj.Data, payload) {
			t.Fatalf("Data = %q, want %q", obj.Data, payload)
		}
		if obj.Size != int64(len(payload)) {
			t.Fatalf("Size = %d, want %d", obj.Size, len(payload))
		}
	})
	// 11 bytes up + 11 bytes down at 1 MiB/s.
	want := time.Duration(float64(2*len(payload)) / (1 << 20) * float64(time.Second))
	if diff := elapsed - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("elapsed = %v, want ~%v", elapsed, want)
	}
	m := store.Metrics()
	if m.Puts != 1 || m.Gets != 1 {
		t.Fatalf("metrics = %+v, want 1 put + 1 get", m)
	}
}

func TestTransferTimeMatchesBandwidthModel(t *testing.T) {
	// 4 MiB at 1 MiB/s must take exactly 4 virtual seconds (size/B).
	elapsed, _ := run(t, func(p *simtime.Proc, s *Store) {
		s.CreateBucket("b")
		if err := s.PutProfiled(p, "b", "big", 4<<20); err != nil {
			t.Fatal(err)
		}
	})
	if diff := elapsed - 4*time.Second; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("elapsed = %v, want ~4s", elapsed)
	}
}

func TestGetMissingKey(t *testing.T) {
	run(t, func(p *simtime.Proc, s *Store) {
		s.CreateBucket("b")
		_, err := s.Get(p, "b", "nope")
		if !errors.Is(err, ErrNoSuchKey) {
			t.Fatalf("err = %v, want ErrNoSuchKey", err)
		}
		_, err = s.Get(p, "nobucket", "k")
		if !errors.Is(err, ErrNoSuchBucket) {
			t.Fatalf("err = %v, want ErrNoSuchBucket", err)
		}
	})
}

func TestListPrefixAndOrder(t *testing.T) {
	run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "map/2", nil)
		s.Seed("b", "map/10", nil)
		s.Seed("b", "map/1", nil)
		s.Seed("b", "red/1", nil)
		keys, err := s.List(p, "b", "map/")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"map/1", "map/10", "map/2"} // lexicographic
		if len(keys) != len(want) {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys = %v, want %v", keys, want)
			}
		}
	})
}

func TestHeadReturnsMetadataWithoutTransfer(t *testing.T) {
	elapsed, store := run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "k", make([]byte, 1<<20))
		obj, err := s.Head(p, "b", "k")
		if err != nil {
			t.Fatal(err)
		}
		if obj.Data != nil {
			t.Fatal("Head must not return the body")
		}
		if obj.Size != 1<<20 {
			t.Fatalf("Size = %d", obj.Size)
		}
	})
	if elapsed != 0 {
		t.Fatalf("Head charged %v of transfer time", elapsed)
	}
	if store.Metrics().Heads != 1 {
		t.Fatal("Head not metered")
	}
}

func TestDeleteIdempotentAndFreesStorage(t *testing.T) {
	_, store := run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "k", make([]byte, 100))
		if err := s.Delete(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(p, "b", "k"); err != nil { // idempotent
			t.Fatal(err)
		}
	})
	if store.StoredBytes() != 0 {
		t.Fatalf("StoredBytes = %d after delete", store.StoredBytes())
	}
	if store.Metrics().Deletes != 2 {
		t.Fatalf("Deletes = %d, want 2", store.Metrics().Deletes)
	}
}

func TestOverwriteReplacesSize(t *testing.T) {
	_, store := run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "k", make([]byte, 100))
		if err := s.Put(p, "b", "k", make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	})
	if store.StoredBytes() != 40 {
		t.Fatalf("StoredBytes = %d, want 40 after overwrite", store.StoredBytes())
	}
}

func TestByteSecondsAccounting(t *testing.T) {
	sched := simtime.NewScheduler()
	store := newTestStore(sched)
	err := sched.Run(func(p *simtime.Proc) {
		store.Seed("b", "k", make([]byte, 1000))
		p.Sleep(10 * time.Second)
		if err := store.Delete(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(100 * time.Second) // nothing stored, nothing accrues
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs := store.ByteSeconds(); math.Abs(bs-10000) > 1 {
		t.Fatalf("ByteSeconds = %v, want ~10000", bs)
	}
}

func TestBillMatchesPricing(t *testing.T) {
	sched := simtime.NewScheduler()
	store := newTestStore(sched)
	err := sched.Run(func(p *simtime.Proc) {
		store.CreateBucket("b")
		for i := 0; i < 10; i++ {
			if err := store.PutProfiled(p, "b", "k", 1); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if _, err := store.Get(p, "b", "k"); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	bill := store.Bill()
	wantReq := pricing.AWS().Store.RequestCost(20, 10)
	if math.Abs(float64(bill.Requests-wantReq)) > 1e-12 {
		t.Fatalf("Requests = %v, want %v", bill.Requests, wantReq)
	}
	if bill.Total() != bill.Requests+bill.Storage {
		t.Fatal("Total != Requests + Storage")
	}
}

func TestFaultInjection(t *testing.T) {
	boom := errors.New("injected")
	run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "k", []byte("x"))
		s.SetFault(func(op Op, bucket, key string) error {
			if op == OpGet && key == "k" {
				return boom
			}
			return nil
		})
		if _, err := s.Get(p, "b", "k"); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want injected fault", err)
		}
		s.SetFault(nil)
		if _, err := s.Get(p, "b", "k"); err != nil {
			t.Fatalf("err = %v after clearing fault", err)
		}
	})
}

func TestFaultedRequestNotMeteredOrCharged(t *testing.T) {
	elapsed, store := run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "k", make([]byte, 1<<20))
		s.SetFault(func(op Op, bucket, key string) error { return errors.New("x") })
		_, _ = s.Get(p, "b", "k")
	})
	if elapsed != 0 {
		t.Fatalf("faulted GET charged %v", elapsed)
	}
	if store.Metrics().Gets != 0 {
		t.Fatal("faulted GET was metered")
	}
}

func TestSharedBandwidthContention(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{
		SharedBandwidth: 1 << 20, // 1 MiB/s aggregate
		Pricing:         pricing.AWS().Store,
	})
	err := sched.Run(func(p *simtime.Proc) {
		store.CreateBucket("b")
		store.SeedProfiled("b", "k", 1<<20)
		// Two concurrent 1 MiB downloads over a 1 MiB/s shared link: both
		// take ~2s instead of 1s each.
		p.Parallel(2, "dl", func(q *simtime.Proc, i int) {
			if _, err := store.Get(q, "b", "k"); err != nil {
				t.Error(err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := sched.Now() - 2*time.Second; d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want ~2s under processor sharing", sched.Now())
	}
}

func TestRequestLatencyCharged(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{
		Bandwidth:      1 << 30,
		RequestLatency: 10 * time.Millisecond,
		Pricing:        pricing.AWS().Store,
	})
	err := sched.Run(func(p *simtime.Proc) {
		store.Seed("b", "k", nil)
		if _, err := store.Get(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Head(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Now() != 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want 20ms of request latency", sched.Now())
	}
}

func TestObjectTooLarge(t *testing.T) {
	sched := simtime.NewScheduler()
	store := New(sched, Config{
		Bandwidth: 1 << 30,
		Pricing:   pricing.ObjectStore{MaxObjectBytes: 1000, PerPut: 1, PerGet: 1, StoragePerGBMonth: 1},
	})
	err := sched.Run(func(p *simtime.Proc) {
		store.CreateBucket("b")
		if err := store.PutProfiled(p, "b", "k", 1001); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectCount(t *testing.T) {
	_, store := run(t, func(p *simtime.Proc, s *Store) {
		s.Seed("b", "a", nil)
		s.Seed("b", "b", nil)
		s.Seed("b", "a", nil) // overwrite, not a new object
	})
	if n := store.ObjectCount("b"); n != 2 {
		t.Fatalf("ObjectCount = %d, want 2", n)
	}
	if n := store.ObjectCount("missing"); n != 0 {
		t.Fatalf("ObjectCount(missing) = %d, want 0", n)
	}
}

func TestMetricsSub(t *testing.T) {
	_, store := run(t, func(p *simtime.Proc, s *Store) {
		s.CreateBucket("b")
		before := s.Metrics()
		if err := s.PutProfiled(p, "b", "k", 10); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(p, "b", "k"); err != nil {
			t.Fatal(err)
		}
		delta := s.Metrics().Sub(before)
		if delta.Puts != 1 || delta.Gets != 1 || delta.BytesIn != 10 || delta.BytesOut != 10 {
			t.Fatalf("delta = %+v", delta)
		}
	})
	_ = store
}
