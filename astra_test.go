package astra

import (
	"strings"
	"testing"
	"time"
)

func TestPlanAndRunRoundTrip(t *testing.T) {
	job := NewJob(WordCount, 10, 64<<20)
	plan, err := Plan(job, MinTime(1.0)) // generous budget
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(job, plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	// The plan's exact-model prediction must match the measured run.
	if d := rep.JCT - plan.Exact.JCT(); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("measured %v vs predicted %v", rep.JCT, plan.Exact.JCT())
	}
}

func TestPlanHonorsBudget(t *testing.T) {
	job := NewJob(WordCount, 10, 64<<20)
	free, err := Plan(job, MinTime(1e6))
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(free.Exact.TotalCost()) * 0.8
	plan, err := Plan(job, MinTime(budget))
	if err != nil {
		t.Fatal(err)
	}
	if float64(plan.Exact.TotalCost()) > budget {
		t.Fatalf("plan cost %v exceeds budget %v", plan.Exact.TotalCost(), budget)
	}
}

func TestMinCostHonorsDeadline(t *testing.T) {
	job := NewJob(Query, 12, 128<<20)
	fast, err := Plan(job, MinTime(1e6))
	if err != nil {
		t.Fatal(err)
	}
	deadline := fast.Exact.JCT() * 2
	plan, err := Plan(job, MinCost(deadline))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(job, plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JCT > deadline {
		t.Fatalf("measured JCT %v violates deadline %v", rep.JCT, deadline)
	}
	if plan.Exact.TotalCost() > fast.Exact.TotalCost() {
		t.Fatal("cheapest plan costs more than the fastest plan")
	}
}

func TestRunConcreteWordCount(t *testing.T) {
	job := NewJob(WordCount, 6, 24<<10)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 3,
	}
	rep, outputs, err := RunConcrete(job, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 1 {
		t.Fatalf("%d outputs, want 1", len(outputs))
	}
	out := string(outputs[0])
	if !strings.Contains(out, "\t") || len(out) == 0 {
		t.Fatalf("output does not look like word counts: %.80q", out)
	}
	if rep.JCT <= 0 {
		t.Fatal("JCT must be positive")
	}
}

func TestRunConcreteSortProducesPartitions(t *testing.T) {
	job := NewJob(Sort, 8, 16<<10)
	cfg := Config{
		MapperMemMB: 1024, CoordMemMB: 256, ReducerMemMB: 1024,
		ObjsPerMapper: 2, ObjsPerReducer: 2,
	}
	_, outputs, err := RunConcrete(job, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sort is single-step: ceil(4 mappers / 2) = 2 partitioned outputs.
	if len(outputs) != 2 {
		t.Fatalf("%d outputs, want 2 partitions", len(outputs))
	}
	for i, out := range outputs {
		lines := strings.Split(strings.TrimSuffix(string(out), "\n"), "\n")
		for j := 1; j < len(lines); j++ {
			if lines[j] < lines[j-1] {
				t.Fatalf("partition %d is not sorted", i)
			}
		}
	}
}

func TestPredictMatchesRun(t *testing.T) {
	job := Query25GB()
	cfg := Baselines(job)[0]
	jct, cost, err := Predict(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.JCT - jct; d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("predicted %v vs measured %v", jct, rep.JCT)
	}
	rel := float64(rep.Cost.Total()-cost) / float64(cost)
	if rel < -0.001 || rel > 0.001 {
		t.Fatalf("predicted cost %v vs measured %v", cost, rep.Cost.Total())
	}
}

func TestNewJobSplitsEvenly(t *testing.T) {
	job := NewJob(Sort, 4, 400)
	if job.ObjectSize != 100 || job.NumObjects != 4 {
		t.Fatalf("job = %+v", job)
	}
	if NewJob(Sort, 0, 100).NumObjects != 1 {
		t.Fatal("zero objects should clamp to 1")
	}
}

func TestDeterminism(t *testing.T) {
	job := WordCount1GB()
	cfg := Baselines(job)[2]
	a, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.JCT != b.JCT || a.Cost.Total() != b.Cost.Total() {
		t.Fatalf("two identical runs diverged: %v/%v vs %v/%v",
			a.JCT, a.Cost.Total(), b.JCT, b.Cost.Total())
	}
}

func TestFrontierProperties(t *testing.T) {
	job := NewJob(WordCount, 12, 256<<20)
	res, err := Frontier(job, WithFrontierSize(16))
	if err != nil {
		t.Fatal(err)
	}
	front := res.Points
	if len(front) < 3 {
		t.Fatalf("frontier too small: %d points", len(front))
	}
	for i := 1; i < len(front); i++ {
		// Sorted fastest first; no point may be dominated by another
		// (ties in both dimensions are permitted — distinct configs can
		// coincide).
		if front[i].Pred.TotalSec() < front[i-1].Pred.TotalSec() {
			t.Fatal("frontier not sorted by time")
		}
		slower := front[i].Pred.TotalSec() > front[i-1].Pred.TotalSec()
		costlier := front[i].Pred.TotalCost() > front[i-1].Pred.TotalCost()
		if slower && costlier {
			t.Fatalf("point %d is dominated by point %d", i, i-1)
		}
	}
	// Endpoints bracket the constrained planners' answers.
	fastest, err := Plan(job, MinTime(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if fastest.Exact.TotalSec() < front[0].Pred.TotalSec()-1e-9 {
		t.Fatal("planner found a faster plan than the frontier's fast end")
	}
}
