// Command astra-server runs the Astra planning service: a long-running
// HTTP/JSON control plane that serves many concurrent tenants from one
// process-wide pair of planning caches.
//
//	astra-server -addr :8080
//	astra-server -addr :8080 -rate 30 -burst 10 -max-inflight 4 -queue 16
//
// Endpoints:
//
//	POST /v1/plan               one optimal configuration (+ explain,
//	                            search stats; execute=true also runs it)
//	POST /v1/plan/batch         many jobs in one call, index-aligned
//	GET|POST /v1/frontier       anytime Pareto frontier as SSE
//	                            (?stream=0: final frontier as JSON)
//	GET  /v1/tenants/{id}/slo   the tenant's SLO ledger slice
//
// plus the embedded observability plane on the same listener: /metrics,
// /healthz, /qos, /events, /explain, /audit, /debug/pprof/*.
//
// Every tenant (X-Astra-Tenant header) gets an independent token bucket
// (-rate, -burst), in-flight cap (-max-inflight) and bounded accept
// queue (-queue); over-quota requests get a deterministic 429 with
// Retry-After. Identical non-executed requests are served from a TTL'd
// response cache (-cache-ttl, -cache-entries) without touching the
// search engine. SIGINT/SIGTERM drains in-flight plans before closing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"astra"
	"astra/internal/api"
	"astra/internal/obs"
	"astra/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astra-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	rate := flag.Float64("rate", 0, "per-tenant sustained requests/sec (0: unlimited)")
	burst := flag.Float64("burst", 10, "per-tenant token-bucket depth")
	maxInflight := flag.Int("max-inflight", 8, "per-tenant concurrently-served request cap")
	queue := flag.Int("queue", 32, "per-tenant accept-queue bound (0: reject instead of queueing)")
	cacheTTL := flag.Duration("cache-ttl", time.Minute, "response-cache entry lifetime")
	cacheEntries := flag.Int("cache-entries", 1024, "response-cache capacity")
	parallelism := flag.Int("parallelism", 1, "per-request inner search parallelism")
	solver := flag.String("solver", "auto", "default solver: auto, algorithm1, yen, rerank, brute, csp")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight plans")
	flag.Parse()

	def, err := api.ParseSolver(*solver)
	if err != nil {
		return err
	}

	tel := astra.NewTelemetry()
	ledger := astra.NewQoSLedger()
	o := obs.NewServer(obs.Options{Telemetry: tel, RuntimeMetrics: true})

	svc := server.NewService(server.ServiceConfig{
		Tel:         tel,
		Ledger:      ledger,
		Solver:      def,
		Parallelism: *parallelism,
	})
	srv := server.New(server.Config{
		Service:   svc,
		Telemetry: tel,
		Obs:       o,
		Quota: server.TenantQuota{
			Rate:        *rate,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
			MaxQueue:    *queue,
		},
		CacheTTL:     *cacheTTL,
		CacheEntries: *cacheEntries,
	})
	if err := srv.Start(*addr); err != nil {
		return err
	}
	fmt.Printf("astra-server listening on %s (rate %.4g/s burst %.4g inflight %d queue %d per tenant)\n",
		srv.Addr(), *rate, *burst, *maxInflight, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("astra-server: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("astra-server: stopped")
	return nil
}
