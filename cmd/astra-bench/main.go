// Command astra-bench regenerates every table and figure of the paper's
// evaluation on the simulated platform, plus this reproduction's solver
// and model ablations. With no arguments it runs everything in paper
// order; -only restricts to a comma-separated list of experiment ids and
// -list enumerates them.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"astra/internal/experiments"
	"astra/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "astra-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("astra-bench", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	outDir := fs.String("out", "", "also write each experiment's output to <dir>/<id>.txt plus a combined REPORT.md")
	serve := fs.String("serve", "",
		"expose the live observability plane on this address while experiments run (runtime health, phase-labeled pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A full regeneration takes a while; -serve lets an operator watch the
	// process (GC pressure, goroutines) and pull phase-labeled CPU
	// profiles of whichever experiment is running.
	if *serve != "" {
		srv := obs.NewServer(obs.Options{RuntimeMetrics: true})
		if err := srv.Start(*serve); err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "astra-bench: observability at http://%s\n", srv.Addr())
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Fprintf(out, "%-18s %s\n", e.ID, e.Title)
		}
		return nil
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
		for id := range selected {
			found := false
			for _, e := range all {
				if e.ID == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	var report strings.Builder
	report.WriteString("# Astra — regenerated evaluation\n")

	failures := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		body, err := e.Run()
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(out, "== %s — %s (%v) ==\n", e.ID, e.Title, elapsed)
		if err != nil {
			fmt.Fprintf(out, "ERROR: %v\n\n", err)
			failures++
			continue
		}
		fmt.Fprintln(out, body)
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(&report, "\n## %s — %s\n\n```\n%s```\n", e.ID, e.Title, body)
		}
	}
	if *outDir != "" {
		path := filepath.Join(*outDir, "REPORT.md")
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
