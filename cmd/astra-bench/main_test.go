package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListEnumeratesExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig7", "fig9", "ablation-solvers"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestOnlyRunsSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table I") || !strings.Contains(s, "objects/lambda") {
		t.Fatalf("table1 output:\n%s", s)
	}
	if strings.Contains(s, "Fig. 7") {
		t.Fatal("-only table1 must not run other experiments")
	}
}

func TestOnlyRejectsUnknownID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "objects/lambda") {
		t.Fatalf("table1.txt = %q", body)
	}
	report, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "## table1") {
		t.Fatalf("REPORT.md = %q", report)
	}
}
