// Command astra-microbench runs the planning-engine micro-benchmarks at
// the Sort100GB scale and emits a machine-readable JSON summary
// (BENCH_plan.json by default): nanoseconds and allocations per
// operation for cold planning, warm re-planning and one simulated
// execution, plus the warm planner's prediction-cache hit rate. It backs
// `make bench` so perf regressions are diffable across commits.
//
// With -diff <baseline.json> it additionally compares the fresh run
// against a checked-in baseline and exits non-zero when any benchmark
// regresses beyond the tolerances (-ns-tolerance, -allocs-tolerance) —
// the `make benchdiff` soft gate in CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"astra"
	"astra/internal/experiments"
	"astra/internal/loadgen"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/workload"
)

// benchResult is one benchmark's machine-readable outcome.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SecondsWall float64 `json:"seconds_wall"`
}

// report is the document written to -out.
type report struct {
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	NumCPU       int           `json:"num_cpu"`
	Workload     string        `json:"workload"`
	Benchmarks   []benchResult `json:"benchmarks"`
	CacheHits    int64         `json:"warm_cache_hits"`
	CacheMisses  int64         `json:"warm_cache_misses"`
	CacheHitRate float64       `json:"warm_cache_hit_rate"`
	// FrontierEvals is the number of exact-model predictions one k=24
	// frontier sweep performs — the engine's work metric, independent of
	// host speed, so a pruning regression is visible even on noisy runners.
	FrontierEvals int64 `json:"frontier_exact_evals_per_sweep"`
	// PlansPerSec and TemplateHitRate come from a fixed 200-plan loadgen
	// run (default mix, shared caches, seed 1): the multi-tenant planning
	// throughput headline. Lower than baseline is a regression.
	PlansPerSec     float64 `json:"plans_per_sec"`
	TemplateHitRate float64 `json:"template_hit_rate"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astra-microbench:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	outPath := flag.String("out", "BENCH_plan.json", "write the JSON report to this file (empty: skip)")
	diffPath := flag.String("diff", "", "compare against this baseline JSON and exit 1 on regression")
	nsTol := flag.Float64("ns-tolerance", 0.05, "allowed ns/op regression vs the -diff baseline (fraction)")
	allocsTol := flag.Float64("allocs-tolerance", 0.10, "allowed allocs/op regression vs the -diff baseline (fraction)")
	rateTol := flag.Float64("rate-tolerance", 0.25, "allowed plans/sec and template-hit-rate drop vs the -diff baseline (fraction)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run (phase-labeled) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, ferr := os.Create(*cpuProfile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			return
		}
		defer f.Close()
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
			err = werr
		}
	}()

	params := model.DefaultParams(workload.Sort100GB())
	obj := optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: 1}

	measure := func(name string, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(fn)
		return benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SecondsWall: r.T.Seconds(),
		}
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Workload:   "Sort100GB",
		Benchmarks: make([]benchResult, 0, 4),
	}

	// Cold plan: fresh planner per iteration (DAG build + search +
	// calibration), serial pool — the bench-parallel-engine.txt baseline.
	rep.Benchmarks = append(rep.Benchmarks, measure("PlanSort100GB_Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := optimizer.New(params)
			pl.Solver = optimizer.Auto
			pl.Parallelism = 1
			if _, err := pl.Plan(obj); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Benchmarks = append(rep.Benchmarks, measure("PlanSort100GB_Parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := optimizer.New(params)
			pl.Solver = optimizer.Auto
			if _, err := pl.Plan(obj); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Anytime frontier sweep: a full k=24 Pareto frontier on a fresh
	// engine per iteration, serial pool. The acceptance target is under
	// 5x one cold plan; Evaluations counts the sweep's exact-model
	// predictions (one per distinct frontier candidate).
	rep.Benchmarks = append(rep.Benchmarks, measure("FrontierSort100GB_Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := optimizer.SweepFrontier(context.Background(), optimizer.FrontierSpec{
				Params:      params,
				Size:        24,
				Parallelism: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep.FrontierEvals = res.Stats.Evaluations
		}
	}))

	// Template hit: fresh planner per iteration — the multi-tenant case
	// where a new tenant plans a shape some earlier tenant already built —
	// resolving its DAG from a warmed shared template cache and its
	// predictions from the shared prediction cache. The acceptance target
	// is >= 5x faster than the cold PlanSort100GB_Serial plan, with a
	// bit-identical result.
	sharedTpl := optimizer.NewTemplateCache(0)
	sharedPred := model.NewPredictionCache()
	{
		pl := optimizer.New(params)
		pl.Solver = optimizer.Auto
		pl.Parallelism = 1
		pl.Templates, pl.Cache = sharedTpl, sharedPred
		if _, err := pl.Plan(obj); err != nil {
			return err
		}
	}
	rep.Benchmarks = append(rep.Benchmarks, measure("PlanSort100GB_TemplateHit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := optimizer.New(params)
			pl.Solver = optimizer.Auto
			pl.Parallelism = 1
			pl.Templates, pl.Cache = sharedTpl, sharedPred
			if _, err := pl.Plan(obj); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Warm re-plan: shared planner, shifting budgets; the memoized DAG
	// and prediction cache absorb most of the work. The same planner's
	// cache stats give the hit rate reported at top level.
	warm := optimizer.New(params)
	warm.Solver = optimizer.Auto
	if _, err := warm.Plan(obj); err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, measure("PlanSort100GB_CachedReplan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			budget := 0.5 + 0.001*float64(i%100)
			if _, err := warm.Plan(optimizer.Objective{
				Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(budget),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	hits, misses := warm.Cache.Stats()
	rep.CacheHits, rep.CacheMisses = int64(hits), int64(misses)
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}

	// Simulated execution at the same scale: 301 lambdas on the virtual
	// clock.
	runCfg := mapreduce.Config{
		MapperMemMB: 1792, CoordMemMB: 1792, ReducerMemMB: 1792,
		ObjsPerMapper: 2, ObjsPerReducer: 1,
	}
	rep.Benchmarks = append(rep.Benchmarks, measure("SimulateSort100GB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Execute(params, runCfg); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The same simulated execution with the streaming QoS monitor attached
	// (flight recorder + drift/deadline-risk tracking + SLO ledger). The
	// delta against SimulateSort100GB is the full observability overhead;
	// it rides the same benchdiff gate as every other row.
	monLedger := astra.NewQoSLedger()
	rep.Benchmarks = append(rep.Benchmarks, measure("PlanSort100GB_Monitored", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := loadgen.ExecuteMonitored(params, "sort-100gb", runCfg, 1.05, monLedger); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Multi-tenant throughput headline: a fixed 200-plan replay of the
	// default shape mix through fresh shared caches (cold ramp included),
	// at min(4, NumCPU) tenants so the figure is comparable across hosts
	// of different widths (NumCPU travels in the report either way).
	lgRes, err := loadgen.Run(context.Background(), loadgen.Spec{
		Shapes:      loadgen.DefaultMix(),
		Concurrency: minInt(4, runtime.NumCPU()),
		MaxPlans:    200,
		Seed:        1,
		Solver:      optimizer.Auto,
	})
	if err != nil {
		return err
	}
	rep.PlansPerSec = lgRes.PlansPerSec
	rep.TemplateHitRate = lgRes.TemplateHitRate

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-28s %10d ns/op %10d B/op %8d allocs/op (n=%d, %s)\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, b.Iterations,
			time.Duration(b.SecondsWall*float64(time.Second)).Round(time.Millisecond))
	}
	fmt.Printf("warm cache hit rate: %.1f%% (%d hits / %d misses)\n",
		100*rep.CacheHitRate, rep.CacheHits, rep.CacheMisses)
	fmt.Printf("frontier exact evals per k=24 sweep: %d\n", rep.FrontierEvals)
	fmt.Printf("loadgen: %.1f plans/sec, %.1f%% template hits (200 plans, default mix)\n",
		rep.PlansPerSec, 100*rep.TemplateHitRate)
	if *outPath != "" {
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *diffPath != "" {
		return diffReport(rep, *diffPath, *nsTol, *allocsTol, *rateTol)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// diffReport prints per-benchmark deltas against a baseline report and
// returns an error (non-zero exit) when any benchmark's ns/op or
// allocs/op regresses beyond its tolerance. Benchmarks absent from the
// baseline are reported but never gate.
func diffReport(rep report, path string, nsTol, allocsTol, rateTol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	pct := func(now, was int64) float64 {
		if was == 0 {
			return 0
		}
		return 100 * (float64(now) - float64(was)) / float64(was)
	}
	fmt.Printf("\ndiff vs %s (gate: ns/op +%.0f%%, allocs/op +%.0f%%, rates -%.0f%%)\n",
		path, 100*nsTol, 100*allocsTol, 100*rateTol)
	// Wall-clock comparisons only mean something on comparable hardware;
	// surface the core counts so a cross-host diff is legible as such.
	fmt.Printf("num_cpu: baseline %d, current %d%s\n", base.NumCPU, rep.NumCPU,
		map[bool]string{true: "", false: "  (DIFFERENT HOSTS — wall-clock deltas are not like-for-like)"}[base.NumCPU == rep.NumCPU])
	var regressed []string
	for _, b := range rep.Benchmarks {
		was, ok := baseline[b.Name]
		if !ok {
			fmt.Printf("%-28s (no baseline entry)\n", b.Name)
			continue
		}
		dNs, dAllocs, dBytes := pct(b.NsPerOp, was.NsPerOp), pct(b.AllocsPerOp, was.AllocsPerOp), pct(b.BytesPerOp, was.BytesPerOp)
		verdict := "ok"
		if dNs > 100*nsTol || dAllocs > 100*allocsTol {
			verdict = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Printf("%-28s ns/op %+7.1f%%  allocs/op %+7.1f%%  B/op %+7.1f%%  %s\n",
			b.Name, dNs, dAllocs, dBytes, verdict)
	}
	// Throughput-style fields: lower than baseline is the regression
	// direction. A zero baseline field (report predating the metric)
	// never gates.
	rate := func(name string, now, was float64) {
		if was == 0 {
			fmt.Printf("%-28s %.2f (no baseline entry)\n", name, now)
			return
		}
		d := 100 * (now - was) / was
		verdict := "ok"
		if d < -100*rateTol {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Printf("%-28s %+7.1f%%  (%.2f -> %.2f)  %s\n", name, d, was, now, verdict)
	}
	rate("plans_per_sec", rep.PlansPerSec, base.PlansPerSec)
	rate("template_hit_rate", rep.TemplateHitRate, base.TemplateHitRate)
	if len(regressed) > 0 {
		return fmt.Errorf("perf regression beyond tolerance in: %v", regressed)
	}
	return nil
}
