// Command astra-loadgen replays a seeded, weighted mix of job shapes
// against the planning engine at a target tenant concurrency and reports
// the sustained planning throughput: plans/sec, per-plan latency
// quantiles, and the shared template/prediction cache hit rates. It is
// the capacity probe for the multi-tenant planning front end:
//
//	astra-loadgen -concurrency 8 -duration 5s
//	astra-loadgen -plans 500 -mix sort-100gb,query-25gb -out load.json
//	astra-loadgen -target http://localhost:8080 -tenants 4 -plans 150
//
// With -target the driver becomes a remote client of a running
// astra-server: the same deterministic shape sequence is POSTed to
// /v1/plan across -tenants tenant identities, 429s are absorbed by a
// bounded retry loop, and the report splits latency into queue wait and
// service time from the server's timing headers.
//
// The shape sequence is a pure function of -seed, so runs are
// reproducible; every plan is bit-identical to a standalone astra.Plan
// call for the same shape. With -run-every N every Nth planned request is
// also executed on a fresh simulated platform under a streaming QoS
// monitor, and the report gains per-shape deadline attainment against an
// SLO of -slo-factor x the predicted JCT. With -metrics-out the run's
// telemetry (astra_plan_template_*, astra_predcache_*, astra_qos_slo_*,
// pool gauges) is written in Prometheus text exposition format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"astra"
	"astra/internal/loadgen"
	"astra/internal/model"
	"astra/internal/optimizer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "astra-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	duration := flag.Duration("duration", 0, "run for this wall time (0: use -plans)")
	plans := flag.Int("plans", 0, "stop after this many plans (0: use -duration; both 0: 200 plans)")
	concurrency := flag.Int("concurrency", runtime.NumCPU(), "simultaneous tenants")
	mix := flag.String("mix", "", "comma-separated shape names (default: full mix; see -list)")
	list := flag.Bool("list", false, "list available shapes and exit")
	seed := flag.Int64("seed", 1, "shape-sequence seed")
	runEvery := flag.Int("run-every", 0, "execute every Nth planned request under a QoS monitor and report deadline attainment (0: plan only)")
	sloFactor := flag.Float64("slo-factor", 1.05, "deadline for executed runs as a multiple of the predicted JCT")
	out := flag.String("out", "", "write the JSON capacity report to this file")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format telemetry to this file")
	target := flag.String("target", "", "drive a running astra-server at this base URL instead of planning in-process")
	tenants := flag.Int("tenants", 4, "tenant identities to spread remote requests across (with -target)")
	flag.Parse()

	if *list {
		for _, s := range loadgen.DefaultMix() {
			fmt.Printf("%-16s weight %d  (%d objects x %d bytes)\n",
				s.Name, s.Weight, s.Job.NumObjects, s.Job.ObjectSize)
		}
		return nil
	}

	shapes := loadgen.DefaultMix()
	if *mix != "" {
		var err error
		shapes, err = loadgen.MixByNames(strings.Split(*mix, ","))
		if err != nil {
			return err
		}
	}
	spec := loadgen.Spec{
		Shapes:      shapes,
		Concurrency: *concurrency,
		MaxPlans:    *plans,
		Duration:    *duration,
		Seed:        *seed,
		Solver:      optimizer.Auto,
		Tel:         astra.NewTelemetry(),
		RunEvery:    *runEvery,
		SLOFactor:   *sloFactor,
		Ledger:      astra.NewQoSLedger(),
		TargetURL:   strings.TrimRight(*target, "/"),
		Tenants:     *tenants,
	}
	if spec.MaxPlans <= 0 && spec.Duration <= 0 {
		spec.MaxPlans = 200
	}
	// One shared cache pair for the whole run — the multi-tenant regime.
	// (Remote runs plan inside the server; these stay idle there.)
	tc := optimizer.NewTemplateCache(0)
	pc := model.NewPredictionCache()
	spec.Templates, spec.Cache = tc, pc

	res, err := loadgen.Run(context.Background(), spec)
	if err != nil {
		return err
	}

	fmt.Printf("plans        %d (%d failed) over %s, %d tenants\n",
		res.Plans, res.Errors, res.Elapsed.Round(time.Millisecond), res.Concurrency)
	fmt.Printf("throughput   %.1f plans/sec\n", res.PlansPerSec)
	fmt.Printf("latency      p50 %s  p95 %s  p99 %s\n",
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	fmt.Printf("queue wait   p50 %s  p95 %s  p99 %s\n",
		res.QueueP50.Round(time.Microsecond), res.QueueP95.Round(time.Microsecond), res.QueueP99.Round(time.Microsecond))
	fmt.Printf("service      p50 %s  p95 %s  p99 %s\n",
		res.ServiceP50.Round(time.Microsecond), res.ServiceP95.Round(time.Microsecond), res.ServiceP99.Round(time.Microsecond))
	if *target != "" {
		fmt.Printf("remote       %d rate-limited (retried), %d transport errors\n",
			res.RateLimited, res.TransportErrors)
		fmt.Printf("respcache    %d hits / %d misses (server-side, via %s)\n",
			res.RespCacheHits, res.RespCacheMisses, "X-Astra-Cache")
	} else {
		fmt.Printf("templates    %.1f%% hit (%d hits / %d misses, %d builds, %d evictions, %d resident)\n",
			100*res.TemplateHitRate, res.TemplateStats.Hits, res.TemplateStats.Misses,
			res.TemplateStats.Builds, res.TemplateStats.Evictions, res.TemplateStats.Entries)
		fmt.Printf("predictions  %.1f%% hit (%d hits / %d misses)\n",
			100*res.PredictionHitRate, res.PredictionHits, res.PredictionMisses)
	}
	for _, s := range shapes {
		fmt.Printf("  %-16s %d plans\n", s.Name, res.PerShape[s.Name])
	}
	if res.Runs > 0 {
		fmt.Printf("slo          %d runs, %d attained / %d breached (%.1f%% attainment at %.2fx predicted JCT)\n",
			res.Runs, res.DeadlineAttained, res.DeadlineBreached,
			100*float64(res.DeadlineAttained)/float64(res.Runs), *sloFactor)
		for _, s := range shapes {
			if slo, ok := res.SLOPerShape[s.Name]; ok && slo.Runs > 0 {
				fmt.Printf("  %-16s %d runs, %d attained / %d breached\n",
					s.Name, slo.Runs, slo.Attained, slo.Breached)
			}
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *metricsOut != "" {
		astra.PublishCacheStats(spec.Tel, tc, pc)
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := spec.Tel.Snapshot().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	return nil
}
