package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProfile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const stragglerProfile = `{
  "seed": 7,
  "rules": [
    {"name": "slow-map", "target": "lambda", "effect": "straggle",
     "phase": "map", "factor": 9, "max_count": 1}
  ]
}`

func TestChaosFlagRunsAndReportsResilience(t *testing.T) {
	path := writeProfile(t, stragglerProfile)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-chaos", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"measured:", "resilience:", "1 straggled", "wasted cost:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestChaosSpeculationReducesJCT(t *testing.T) {
	path := writeProfile(t, stragglerProfile)
	measure := func(extra ...string) string {
		var out bytes.Buffer
		args := append([]string{
			"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
			"-chaos", path,
		}, extra...)
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	slow := measure()
	fast := measure("-speculate", "1.5")
	if !strings.Contains(fast, "1 wins") {
		t.Fatalf("speculative run reported no backup win:\n%s", fast)
	}
	jct := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "measured:") {
				return line
			}
		}
		return ""
	}
	if jct(slow) == jct(fast) {
		t.Fatalf("speculation did not change the measured line:\nslow %s\nfast %s", jct(slow), jct(fast))
	}
}

func TestChaosFlagValidation(t *testing.T) {
	var out bytes.Buffer
	// Unknown field fails fast, naming the typo.
	bad := writeProfile(t, `{"seed":1,"rules":[{"target":"lambda","effect":"straggle","factr":8}]}`)
	if err := run(context.Background(), []string{"-chaos", bad}, &out); err == nil || !strings.Contains(err.Error(), "factr") {
		t.Fatalf("bad profile: err = %v, want unknown-field error", err)
	}
	// Structurally invalid rule (straggle without factor).
	bad2 := writeProfile(t, `{"seed":1,"rules":[{"target":"lambda","effect":"straggle"}]}`)
	if err := run(context.Background(), []string{"-chaos", bad2}, &out); err == nil || !strings.Contains(err.Error(), "factor") {
		t.Fatalf("invalid rule: err = %v, want validation error", err)
	}
	// Missing file.
	if err := run(context.Background(), []string{"-chaos", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing profile should fail")
	}
	// -seed without -chaos is a usage error.
	if err := run(context.Background(), []string{"-seed", "3"}, &out); err == nil || !strings.Contains(err.Error(), "-chaos") {
		t.Fatalf("-seed alone: err = %v, want requires -chaos", err)
	}
	// Negative knobs rejected.
	if err := run(context.Background(), []string{"-speculate", "-1"}, &out); err == nil {
		t.Fatal("-speculate -1 should fail")
	}
	if err := run(context.Background(), []string{"-retries", "-1"}, &out); err == nil {
		t.Fatal("-retries -1 should fail")
	}
}

func TestChaosSeedOverrideChangesFaults(t *testing.T) {
	// A probabilistic profile under two seeds must (for this pair) injure
	// different attempts; the -seed flag is the lever.
	path := writeProfile(t, `{
  "seed": 1,
  "rules": [
    {"target": "lambda", "effect": "straggle", "phase": "map",
     "probability": 0.5, "factor": 4}
  ]
}`)
	measure := func(seed string) string {
		var out bytes.Buffer
		args := []string{"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8", "-chaos", path}
		if seed != "" {
			args = append(args, "-seed", seed)
		}
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	base := measure("")
	same := measure("1") // explicit seed equal to the profile's
	if base != same {
		t.Fatalf("-seed equal to the profile seed changed the run:\n%s\nvs\n%s", base, same)
	}
	// Any single seed pair can coincide on a small job; across several
	// seeds at p=0.5 at least one must diverge.
	diverged := false
	for _, s := range []string{"2", "3", "4", "5"} {
		if measure(s) != base {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("no alternative seed changed the run (suspicious for p=0.5)")
	}
}
