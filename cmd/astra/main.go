// Command astra plans — and optionally executes on the simulated
// platform — a serverless analytics job under a user objective, the way
// the paper's Astra front end does: submit a job, state a budget or a QoS
// deadline, and receive the optimal configuration and orchestration.
//
// Examples:
//
//	astra -workload wordcount -size-gb 1 -objects 20 \
//	      -objective time -budget 0.005 -run
//
//	astra -workload query -size-gb 25.4 -objects 202 \
//	      -objective cost -deadline 3m -run -baselines
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"astra"

	"astra/internal/flight"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/obs"
	"astra/internal/optimizer"
	"astra/internal/pricing"
	"astra/internal/spec"
	"astra/internal/trace"
	"astra/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "astra:", err)
		os.Exit(1)
	}
}

type options struct {
	workload   string
	sizeGB     float64
	objects    int
	objective  string
	budget     float64
	deadline   time.Duration
	solver     string
	specPath   string
	traceOut   string
	metricsOut string
	eventsOut  string
	chaosPath  string
	seed       int64
	seedSet    bool
	speculate  float64
	retries    int
	explain    bool
	doRun      bool
	baselines  bool
	timeline   bool
	jsonOut    bool
	audit      bool
	qos        bool
	qosOut     string
	force      bool

	frontier    int
	frontierOut string

	serve      string
	serveFor   time.Duration
	cpuProfile string
	memProfile string

	parallelism int
	planTimeout time.Duration
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("astra", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.workload, "workload", "wordcount",
		"workload profile: wordcount, sort, query, grep, spark-wordcount, spark-sql")
	fs.Float64Var(&o.sizeGB, "size-gb", 1.0, "total input size in GB")
	fs.IntVar(&o.objects, "objects", 20, "number of input objects")
	fs.StringVar(&o.objective, "objective", "time",
		"optimization goal: time (minimize JCT under -budget) or cost (minimize cost under -deadline)")
	fs.Float64Var(&o.budget, "budget", 0, "budget in USD for -objective time (0 = unconstrained)")
	fs.DurationVar(&o.deadline, "deadline", 0, "QoS completion-time threshold for -objective cost (0 = unconstrained)")
	fs.StringVar(&o.solver, "solver", "auto",
		"solver: auto, algorithm1, yen, csp, rerank, brute")
	fs.StringVar(&o.specPath, "spec", "",
		"path to a JSON job spec (overrides workload/size/objective flags)")
	fs.BoolVar(&o.doRun, "run", false, "execute the plan on the simulated platform")
	fs.BoolVar(&o.baselines, "baselines", false, "also execute the paper's three baselines")
	fs.BoolVar(&o.timeline, "timeline", false, "print the execution timeline (implies -run)")
	fs.StringVar(&o.traceOut, "trace-out", "",
		"write the execution timeline to this file (.csv, .json, or .txt for a Gantt chart; implies -run)")
	fs.StringVar(&o.metricsOut, "metrics-out", "",
		"write planning/run telemetry to this file (.json for JSON, anything else for Prometheus text)")
	fs.StringVar(&o.eventsOut, "events-out", "",
		"write the run's flight-recorder event stream to this file as JSONL (implies -run)")
	fs.BoolVar(&o.audit, "audit", false,
		"record the run and print the critical-path / model-accuracy audit (implies -run)")
	fs.BoolVar(&o.qos, "qos", false,
		"attach the streaming QoS monitor: live drift scores, deadline risk and cost burn (implies -run; deadline from -deadline, else 1.5x the predicted JCT)")
	fs.StringVar(&o.qosOut, "qos-out", "",
		"write the final QoS monitor snapshot to this file as JSON (implies -qos)")
	fs.StringVar(&o.chaosPath, "chaos", "",
		"subject the run to a JSON fault-injection profile (implies -run; see README \"Running under faults\")")
	fs.Int64Var(&o.seed, "seed", 0,
		"override the chaos profile's seed (same profile + same seed = same faults)")
	fs.Float64Var(&o.speculate, "speculate", 0,
		"launch speculative backups for tasks running past this multiple of their predicted duration (0 = off, implies -run)")
	fs.IntVar(&o.retries, "retries", 2,
		"re-invoke a failed mapper/reducer task up to this many times (failed attempts stay billed)")
	fs.IntVar(&o.frontier, "frontier", 0,
		"sweep a k-point time/cost Pareto frontier instead of planning one configuration (0 = off)")
	fs.StringVar(&o.frontierOut, "frontier-out", "",
		"write the frontier points to this file as CSV (requires -frontier)")
	fs.StringVar(&o.serve, "serve", "",
		"expose the live observability plane on this address (host:port; port 0 picks one): /metrics, /events, /frontier, /explain, /debug/pprof")
	fs.DurationVar(&o.serveFor, "serve-for", 0,
		"keep the -serve plane up this long after the work finishes (interrupt to stop early)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "",
		"write a CPU profile of the whole command (planning phases carry pprof labels) to this file")
	fs.StringVar(&o.memProfile, "memprofile", "",
		"write a heap profile at exit to this file")
	fs.BoolVar(&o.force, "f", false, "overwrite existing output files")
	fs.BoolVar(&o.explain, "explain", false, "print the plan's search report (explain-plan)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON")
	fs.IntVar(&o.parallelism, "parallelism", 0,
		"plan-search worker pool size (0 = all cores, 1 = serial)")
	fs.DurationVar(&o.planTimeout, "plan-timeout", 0,
		"abort planning after this wall-clock duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			o.seedSet = true
		}
	})
	if o.speculate < 0 {
		return nil, fmt.Errorf("-speculate must be >= 0, got %v", o.speculate)
	}
	if o.retries < 0 {
		return nil, fmt.Errorf("-retries must be >= 0, got %v", o.retries)
	}
	if o.seedSet && o.chaosPath == "" {
		return nil, fmt.Errorf("-seed requires -chaos")
	}
	if o.qosOut != "" {
		o.qos = true
	}
	if o.timeline || o.traceOut != "" || o.eventsOut != "" || o.audit ||
		o.chaosPath != "" || o.speculate > 0 || o.qos {
		o.doRun = true
	}
	if o.frontier < 0 {
		return nil, fmt.Errorf("-frontier must be >= 0, got %d", o.frontier)
	}
	if o.serveFor < 0 {
		return nil, fmt.Errorf("-serve-for must be >= 0, got %v", o.serveFor)
	}
	if o.serveFor > 0 && o.serve == "" {
		return nil, fmt.Errorf("-serve-for requires -serve")
	}
	if o.frontierOut != "" && o.frontier == 0 {
		return nil, fmt.Errorf("-frontier-out requires -frontier")
	}
	if o.frontier > 0 && (o.doRun || o.baselines || o.explain) {
		return nil, fmt.Errorf("-frontier sweeps the whole tradeoff curve; it cannot be combined with -run, -baselines, or -explain")
	}
	return o, nil
}

// createOutput opens an export file for writing. Without -f it refuses to
// clobber an existing file, so a stale artifact is never silently
// replaced; any other open failure (unwritable directory, permission)
// surfaces immediately — before planning starts — as a non-zero exit.
func createOutput(path string, force bool) (*os.File, error) {
	if force {
		return os.Create(path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return nil, fmt.Errorf("%s exists; pass -f to overwrite", path)
	}
	return f, err
}

// outputs holds the pre-opened export files (nil when the flag is unset).
type outputs struct {
	trace, metrics, events, frontier, qos *os.File
	cpuprofile, memprofile                *os.File
}

func (of *outputs) closeAll() {
	for _, f := range []*os.File{of.trace, of.metrics, of.events, of.frontier,
		of.qos, of.cpuprofile, of.memprofile} {
		if f != nil {
			f.Close()
		}
	}
}

// openOutputs opens every requested export file up front, so path
// problems fail the command before any planning or simulation work.
func openOutputs(o *options) (*outputs, error) {
	of := &outputs{}
	var err error
	open := func(path string) *os.File {
		if err != nil || path == "" {
			return nil
		}
		var f *os.File
		f, err = createOutput(path, o.force)
		return f
	}
	of.trace = open(o.traceOut)
	of.metrics = open(o.metricsOut)
	of.events = open(o.eventsOut)
	of.frontier = open(o.frontierOut)
	of.qos = open(o.qosOut)
	of.cpuprofile = open(o.cpuProfile)
	of.memprofile = open(o.memProfile)
	if err != nil {
		of.closeAll()
		return nil, err
	}
	return of, nil
}

func solverByName(name string) (optimizer.Solver, error) {
	switch name {
	case "auto":
		return optimizer.Auto, nil
	case "algorithm1":
		return optimizer.Algorithm1, nil
	case "yen":
		return optimizer.Yen, nil
	case "csp":
		return optimizer.CSP, nil
	case "rerank":
		return optimizer.Rerank, nil
	case "brute":
		return optimizer.Brute, nil
	default:
		return 0, fmt.Errorf("unknown solver %q", name)
	}
}

// result is the JSON output schema.
type result struct {
	Workload  string            `json:"workload"`
	Objective string            `json:"objective"`
	Config    mapreduce.Config  `json:"config"`
	Predicted predictionJSON    `json:"predicted"`
	Measured  *measurementJSON  `json:"measured,omitempty"`
	Baselines []measurementJSON `json:"baselines,omitempty"`
	Explain   string            `json:"explain,omitempty"`
	Audit     *flight.Audit     `json:"audit,omitempty"`
	// QoS is the streaming monitor's final snapshot (present with -qos).
	QoS *astra.QoSSnapshot `json:"qos,omitempty"`
	// Resilience attributes fault-injection damage and recovery spend;
	// present only when -chaos or -speculate is active.
	Resilience *mapreduce.Resilience `json:"resilience,omitempty"`
}

type predictionJSON struct {
	JCTSeconds float64 `json:"jct_seconds"`
	CostUSD    float64 `json:"cost_usd"`
}

type measurementJSON struct {
	Name       string  `json:"name"`
	JCTSeconds float64 `json:"jct_seconds"`
	CostUSD    float64 `json:"cost_usd"`
	// DeadlineMet reports whether the measured JCT honored the -deadline
	// objective (present only for -objective cost with a deadline).
	DeadlineMet *bool `json:"deadline_met,omitempty"`
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	files, err := openOutputs(o)
	if err != nil {
		return err
	}
	defer files.closeAll()

	if files.cpuprofile != nil {
		if err := pprof.StartCPUProfile(files.cpuprofile); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if files.memprofile == nil {
			return
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if werr := pprof.WriteHeapProfile(files.memprofile); werr != nil && err == nil {
			err = werr
		}
	}()

	// Load and validate the chaos profile up front, so a malformed file
	// (unknown field, bad rule) fails the command before planning starts.
	var chaosPlan *astra.ChaosPlan
	if o.chaosPath != "" {
		if chaosPlan, err = astra.LoadChaosPlan(o.chaosPath); err != nil {
			return err
		}
		if o.seedSet {
			chaosPlan.Seed = o.seed
		}
	}
	// Chaos engines are single-run (rule fire-counters); build a fresh one
	// per execution so the main run and each baseline see identical faults.
	withChaos := func(opts []astra.RunOption) ([]astra.RunOption, error) {
		if chaosPlan == nil {
			return opts, nil
		}
		eng, err := astra.NewChaosEngine(chaosPlan)
		if err != nil {
			return nil, err
		}
		return append(append([]astra.RunOption{}, opts...), astra.WithChaos(eng)), nil
	}

	var job workload.Job
	var obj optimizer.Objective
	var solver optimizer.Solver
	var runOpts []astra.RunOption

	if o.specPath != "" {
		// Declarative mode: the spec document supplies everything.
		sf, err := spec.Load(o.specPath)
		if err != nil {
			return err
		}
		o.workload, o.sizeGB, o.objects = sf.Workload, sf.SizeGB, sf.Objects
		if job, err = sf.Job(); err != nil {
			return err
		}
		if obj, err = sf.ObjectiveValue(); err != nil {
			return err
		}
		if solver, err = sf.SolverValue(); err != nil {
			return err
		}
		runOpts = append(runOpts, sf.ApplyExecution)
	} else {
		pf, err := workload.ByName(o.workload)
		if err != nil {
			return err
		}
		if o.sizeGB <= 0 || o.objects <= 0 {
			return fmt.Errorf("size and object count must be positive")
		}
		totalBytes := int64(o.sizeGB * float64(int64(1)<<30))
		job = workload.Job{
			Profile:    pf,
			NumObjects: o.objects,
			ObjectSize: totalBytes / int64(o.objects),
		}
		switch o.objective {
		case "time":
			if o.budget < 0 {
				return fmt.Errorf("budget must be >= 0 (0 = unconstrained), got %v", o.budget)
			}
			obj = optimizer.Objective{Goal: optimizer.MinTimeUnderBudget, Budget: pricing.USD(o.budget)}
			if o.budget == 0 {
				obj.Budget = 1e9 // unconstrained
			}
		case "cost":
			if o.deadline < 0 {
				return fmt.Errorf("deadline must be >= 0 (0 = unconstrained), got %v", o.deadline)
			}
			obj = optimizer.Objective{Goal: optimizer.MinCostUnderDeadline, Deadline: o.deadline}
			if o.deadline == 0 {
				obj.Deadline = 1e6 * time.Hour // unconstrained
			}
		default:
			return fmt.Errorf("unknown objective %q (want time or cost)", o.objective)
		}
		if solver, err = solverByName(o.solver); err != nil {
			return err
		}
	}

	planCtx := ctx
	if o.planTimeout > 0 {
		var cancel context.CancelFunc
		planCtx, cancel = context.WithTimeout(ctx, o.planTimeout)
		defer cancel()
	}
	params := model.DefaultParams(job)
	var tel *astra.Telemetry
	if o.explain || o.metricsOut != "" || o.serve != "" {
		tel = astra.NewTelemetry()
	}

	// The flight recorder observes only the main (planned) run —
	// baselines stay unrecorded so the exported/streamed event stream
	// describes exactly one execution.
	var rec *astra.FlightRecorder
	if o.audit || o.eventsOut != "" || o.serve != "" || o.qos {
		rec = astra.NewFlightRecorder()
	}

	// -serve mounts the observability plane over the same registry and
	// recorder the command is about to use, so clients watch the plan and
	// run live. It stays up through the optional -serve-for window and
	// shuts down gracefully (draining SSE clients) on the way out.
	var srv *obs.Server
	if o.serve != "" {
		srv = obs.NewServer(obs.Options{Telemetry: tel, Flight: rec, RuntimeMetrics: true})
		if err := srv.Start(o.serve); err != nil {
			return err
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if serr := srv.Shutdown(sctx); serr != nil && err == nil {
				err = serr
			}
		}()
		fmt.Fprintf(infoWriter(o, out), "observability: http://%s (/metrics /events /frontier /explain /qos /audit /debug/pprof)\n", srv.Addr())
	}

	if o.frontier > 0 {
		if err := runFrontier(planCtx, out, o, job, params, files, tel, srv); err != nil {
			return err
		}
		if files.metrics != nil && tel != nil {
			if err := writeMetrics(files.metrics, o.metricsOut, tel); err != nil {
				return err
			}
		}
		waitServe(ctx, o, srv, out)
		return nil
	}
	// Private caches: a CLI invocation is one-shot, and its reported
	// search stats must be a function of the flags alone — not of other
	// planning calls that happened to share the process.
	plan, err := astra.PlanContext(planCtx, job, obj,
		astra.WithParams(params),
		astra.WithSolver(solver),
		astra.WithParallelism(o.parallelism),
		astra.WithPrivateCaches(),
		astra.WithTelemetry(tel))
	if err != nil {
		return err
	}
	if srv != nil {
		srv.PublishExplain(plan.Explain())
	}
	if tel != nil {
		runOpts = append(runOpts, astra.WithRunTelemetry(tel))
	}
	if o.speculate > 0 {
		runOpts = append(runOpts, astra.WithSpeculation(o.speculate))
	}
	if o.retries > 0 {
		runOpts = append(runOpts, astra.WithTaskRetries(o.retries))
	}

	res := result{
		Workload:  o.workload,
		Objective: obj.Goal.String(),
		Config:    plan.Config,
		Predicted: predictionJSON{
			JCTSeconds: plan.Exact.TotalSec(),
			CostUSD:    float64(plan.Exact.TotalCost()),
		},
	}

	if !o.jsonOut {
		fmt.Fprintf(out, "workload:  %s, %d objects, %.2f GB\n", o.workload, o.objects, o.sizeGB)
		fmt.Fprintf(out, "objective: %s\n", describeObjective(obj))
		fmt.Fprintf(out, "solver:    %s\n", solver)
		fmt.Fprintf(out, "plan:      %s\n", plan.Config)
		orch := plan.Exact.Orch
		fmt.Fprintf(out, "shape:     %d mappers, %d reducers in %d step(s)\n",
			orch.Mappers(), orch.Reducers(), orch.NumSteps())
		fmt.Fprintf(out, "predicted: JCT %.2fs, cost %s\n",
			plan.Exact.TotalSec(), plan.Exact.TotalCost())
	}
	if o.explain {
		res.Explain = plan.Explain()
		if !o.jsonOut {
			fmt.Fprintln(out)
			fmt.Fprint(out, res.Explain)
			fmt.Fprintln(out)
		}
	}

	var runReport *mapreduce.Report
	var qosMon *astra.QoSMonitor
	if o.doRun {
		mainOpts := runOpts
		if rec != nil {
			mainOpts = append(append([]astra.RunOption{}, runOpts...),
				astra.WithFlightRecorder(rec))
		}
		if o.qos {
			// The monitor follows the main run only (like the recorder);
			// an explicit -deadline is the QoS threshold, otherwise the
			// default (1.5x predicted JCT) is filled in at Run time.
			qopts := astra.QoSOptions{Tenant: "cli", Job: o.workload,
				Ledger: astra.NewQoSLedger(), Telemetry: tel}
			if obj.Goal == optimizer.MinCostUnderDeadline && o.deadline > 0 {
				qopts.Deadline = obj.Deadline
			}
			qosMon = astra.NewQoSMonitor(qopts)
			mainOpts = append(mainOpts, astra.WithQoSMonitor(qosMon))
			if srv != nil {
				srv.PublishQoS(qosMon)
			}
		}
		if mainOpts, err = withChaos(mainOpts); err != nil {
			return err
		}
		runReport, err = astra.RunWith(params, plan.Config, mainOpts...)
		if err != nil {
			return err
		}
		res.Measured = &measurementJSON{
			Name:       "astra",
			JCTSeconds: runReport.JCT.Seconds(),
			CostUSD:    float64(runReport.Cost.Total()),
		}
		if obj.Goal == optimizer.MinCostUnderDeadline && o.deadline > 0 {
			met := runReport.DeadlineMet(obj.Deadline)
			res.Measured.DeadlineMet = &met
		}
		if !o.jsonOut {
			fmt.Fprintf(out, "measured:  JCT %.2fs, cost %s\n",
				runReport.JCT.Seconds(), runReport.Cost.Total())
			if res.Measured.DeadlineMet != nil {
				fmt.Fprintf(out, "deadline:  %v (met: %v)\n", obj.Deadline, *res.Measured.DeadlineMet)
			}
		}
		if o.chaosPath != "" || o.speculate > 0 {
			resil := runReport.Resilience
			res.Resilience = &resil
			if !o.jsonOut {
				printResilience(out, &resil)
			}
		}
	}

	if o.baselines {
		for i, cfg := range optimizer.Baselines(job.NumObjects) {
			bOpts, err := withChaos(runOpts)
			if err != nil {
				return err
			}
			rep, err := astra.RunWith(params, cfg, bOpts...)
			if err != nil {
				return fmt.Errorf("baseline %d: %w", i+1, err)
			}
			res.Baselines = append(res.Baselines, measurementJSON{
				Name:       optimizer.BaselineNames[i],
				JCTSeconds: rep.JCT.Seconds(),
				CostUSD:    float64(rep.Cost.Total()),
			})
			if !o.jsonOut {
				fmt.Fprintf(out, "%s: JCT %.2fs, cost %s  (%s)\n",
					optimizer.BaselineNames[i], rep.JCT.Seconds(), rep.Cost.Total(), cfg)
			}
		}
	}

	if qosMon != nil {
		snap := qosMon.Snapshot()
		res.QoS = &snap
		if !o.jsonOut {
			printQoS(out, &snap)
		}
		if files.qos != nil {
			enc := json.NewEncoder(files.qos)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				return err
			}
		}
	}

	if o.audit && runReport != nil {
		aud, err := runReport.Audit()
		if err != nil {
			return err
		}
		aud.Publish(tel)
		if srv != nil {
			srv.PublishAudit(aud)
		}
		res.Audit = aud
		if !o.jsonOut {
			fmt.Fprintln(out)
			fmt.Fprint(out, aud.Render())
		}
	}

	if o.timeline && runReport != nil {
		tl := trace.FromRecords(runReport.Records)
		fmt.Fprintln(out)
		fmt.Fprint(out, tl.PhaseSummary())
	}
	if files.trace != nil && runReport != nil {
		if err := writeTrace(files.trace, o.traceOut, trace.FromRecords(runReport.Records)); err != nil {
			return err
		}
	}
	if files.events != nil && runReport != nil {
		if err := flight.WriteJSONL(files.events, runReport.Events); err != nil {
			return err
		}
	}

	if files.metrics != nil && tel != nil {
		if err := writeMetrics(files.metrics, o.metricsOut, tel); err != nil {
			return err
		}
	}

	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	waitServe(ctx, o, srv, out)
	return nil
}

// infoWriter routes -serve status lines: with -json they go to stderr so
// stdout stays a parseable document.
func infoWriter(o *options, out io.Writer) io.Writer {
	if o.jsonOut {
		return os.Stderr
	}
	return out
}

// waitServe keeps the observability plane up for the -serve-for window
// after the work finished, so clients can scrape the final state; an
// interrupt (or parent-context cancel) ends the window early.
func waitServe(ctx context.Context, o *options, srv *obs.Server, out io.Writer) {
	if srv == nil || o.serveFor <= 0 {
		return
	}
	fmt.Fprintf(infoWriter(o, out), "serving for %v (interrupt to stop)\n", o.serveFor)
	select {
	case <-time.After(o.serveFor):
	case <-ctx.Done():
	}
}

// frontierJSON is the -frontier -json output schema.
type frontierJSON struct {
	Workload string               `json:"workload"`
	Points   []frontierPointJSON  `json:"points"`
	Stats    frontierSweepStatsJS `json:"stats"`
}

type frontierPointJSON struct {
	JCTSeconds float64          `json:"jct_seconds"`
	CostUSD    float64          `json:"cost_usd"`
	Config     mapreduce.Config `json:"config"`
}

type frontierSweepStatsJS struct {
	Phases       int64   `json:"phases"`
	Searches     int64   `json:"searches"`
	Pruned       int64   `json:"pruned"`
	Evaluations  int64   `json:"evaluations"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	WallSeconds  float64 `json:"wall_seconds"`
}

// runFrontier handles -frontier: sweep a k-point Pareto frontier for the
// job, print it (text or JSON), and export CSV when -frontier-out is set.
func runFrontier(ctx context.Context, out io.Writer, o *options, job workload.Job, params model.Params, files *outputs, tel *astra.Telemetry, srv *obs.Server) error {
	opts := []astra.FrontierOption{
		astra.WithFrontierSize(o.frontier),
		astra.WithParams(params),
		astra.WithParallelism(o.parallelism),
		// Invocation-deterministic stats, as in the plan path: the sweep's
		// cache hit rate must not depend on prior in-process planning.
		astra.WithPrivateCaches(),
		astra.WithTelemetry(tel),
	}
	// The sweep is anytime; fan each refinement out to every interested
	// observer (the last WithFrontierObserver wins, so compose here):
	// /frontier SSE clients when -serve is up, stdout narration otherwise.
	var observers []func(astra.FrontierUpdate)
	if srv != nil {
		observers = append(observers, srv.FrontierObserver())
	}
	if !o.jsonOut {
		observers = append(observers, func(u astra.FrontierUpdate) {
			if !u.Final {
				fmt.Fprintf(out, "phase %d: %d frontier point(s)\n", u.Phase, len(u.Points))
			}
		})
	}
	if len(observers) > 0 {
		opts = append(opts, astra.WithFrontierObserver(func(u astra.FrontierUpdate) {
			for _, fn := range observers {
				fn(u)
			}
		}))
	}
	front, err := astra.FrontierContext(ctx, job, opts...)
	if err != nil {
		return err
	}
	if files.frontier != nil {
		if err := writeFrontierCSV(files.frontier, front.Points); err != nil {
			return err
		}
	}
	if o.jsonOut {
		doc := frontierJSON{
			Workload: o.workload,
			Stats: frontierSweepStatsJS{
				Phases:       front.Stats.Phases,
				Searches:     front.Stats.Searches,
				Pruned:       front.Stats.Pruned,
				Evaluations:  front.Stats.Evaluations,
				CacheHitRate: front.Stats.CacheHitRate(),
				WallSeconds:  front.Stats.Wall.Seconds(),
			},
		}
		for _, pt := range front.Points {
			doc.Points = append(doc.Points, frontierPointJSON{
				JCTSeconds: pt.Pred.TotalSec(),
				CostUSD:    float64(pt.Pred.TotalCost()),
				Config:     pt.Config,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Fprintf(out, "workload:  %s, %d objects, %.2f GB\n", o.workload, o.objects, o.sizeGB)
	fmt.Fprintf(out, "frontier:  %d point(s), %d searches, %d pruned, %d exact evaluations\n",
		len(front.Points), front.Stats.Searches, front.Stats.Pruned, front.Stats.Evaluations)
	for _, pt := range front.Points {
		fmt.Fprintf(out, "  %8.2fs  %s  (%s)\n",
			pt.Pred.TotalSec(), pt.Pred.TotalCost(), pt.Config)
	}
	return nil
}

// writeFrontierCSV exports frontier points with one row per
// configuration, cheapest-to-fastest being the row order the sweep
// already guarantees (sorted by ascending time).
func writeFrontierCSV(f io.Writer, pts []astra.FrontierPoint) error {
	if _, err := io.WriteString(f,
		"jct_seconds,cost_usd,mapper_mem_mb,coord_mem_mb,reducer_mem_mb,objs_per_mapper,objs_per_reducer\n"); err != nil {
		return err
	}
	for _, pt := range pts {
		if _, err := fmt.Fprintf(f, "%.6f,%.8f,%d,%d,%d,%d,%d\n",
			pt.Pred.TotalSec(), float64(pt.Pred.TotalCost()),
			pt.Config.MapperMemMB, pt.Config.CoordMemMB, pt.Config.ReducerMemMB,
			pt.Config.ObjsPerMapper, pt.Config.ObjsPerReducer); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics exports a telemetry snapshot to a pre-opened file, picking
// the format from the path's extension: .json gets the full JSON document
// (spans included), anything else the Prometheus text exposition.
func writeMetrics(f io.Writer, path string, tel *astra.Telemetry) error {
	snap := tel.Snapshot()
	if strings.HasSuffix(path, ".json") {
		return snap.WriteJSON(f)
	}
	return snap.WritePrometheus(f)
}

// writeTrace exports a timeline to a pre-opened file, picking the format
// from the path's extension: .json, .txt (ASCII Gantt chart), or CSV
// otherwise.
func writeTrace(f io.Writer, path string, tl trace.Timeline) error {
	switch {
	case strings.HasSuffix(path, ".json"):
		return tl.WriteJSON(f)
	case strings.HasSuffix(path, ".txt"):
		_, err := io.WriteString(f, tl.Render(80))
		return err
	default:
		return tl.WriteCSV(f)
	}
}

// printQoS renders the monitor's final verdict: risk state, projection
// vs deadline, drift alarms and cost burn, plus each recorded transition
// at its virtual-time instant.
func printQoS(out io.Writer, s *astra.QoSSnapshot) {
	fmt.Fprintf(out, "qos:       %s — projected JCT %.2fs vs deadline %.2fs (slack %.2fs)\n",
		s.State, s.ProjectedJCT.Seconds(), s.Deadline.Seconds(), s.Slack.Seconds())
	fmt.Fprintf(out, "           spent $%.6f (predicted $%.6f, wasted $%.6f), %d drifted term(s)\n",
		s.Cost.SpentUSD, s.Cost.PredictedUSD, s.Cost.WastedUSD, s.DriftedTerms)
	for _, tr := range s.Transitions {
		switch tr.Kind {
		case "risk":
			fmt.Fprintf(out, "           t+%-8s %s\n", tr.At, tr.State)
		case "drift":
			fmt.Fprintf(out, "           t+%-8s drift %s/%s\n", tr.At, tr.Stage, tr.Term)
		}
	}
}

// printResilience renders the run's fault-and-recovery accounting.
func printResilience(out io.Writer, r *mapreduce.Resilience) {
	fmt.Fprintln(out, "resilience:")
	fmt.Fprintf(out, "  lambda faults:    %d (%d pre-start, %d mid-flight, %d straggled, %d forced cold)\n",
		r.LambdaFaults, r.FailedBeforeStart, r.FailedMidFlight, r.Straggled, r.ForcedColdStarts)
	fmt.Fprintf(out, "  throttles/store:  %d injected throttles, %d store faults\n",
		r.InjectedThrottles, r.StoreFaults)
	fmt.Fprintf(out, "  recovery:         %d task retries, %d backups (%d wins, %d cancelled)\n",
		r.TaskRetries, r.Speculation.BackupsLaunched, r.Speculation.Wins, r.Speculation.Cancelled)
	fmt.Fprintf(out, "  wasted cost:      %s\n", r.WastedCost)
}

func describeObjective(obj optimizer.Objective) string {
	if obj.Goal == optimizer.MinCostUnderDeadline {
		return fmt.Sprintf("minimize cost, JCT <= %v", obj.Deadline)
	}
	return fmt.Sprintf("minimize JCT, cost <= %s", obj.Budget)
}
