package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"astra/internal/optimizer"
)

func TestSolverByName(t *testing.T) {
	cases := map[string]optimizer.Solver{
		"auto": optimizer.Auto, "algorithm1": optimizer.Algorithm1,
		"yen": optimizer.Yen, "csp": optimizer.CSP,
		"rerank": optimizer.Rerank, "brute": optimizer.Brute,
	}
	for name, want := range cases {
		got, err := solverByName(name)
		if err != nil || got != want {
			t.Errorf("solverByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := solverByName("nope"); err == nil {
		t.Fatal("unknown solver should fail")
	}
}

func TestRunPlanOnly(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"plan:", "predicted:", "mappers"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "measured") {
		t.Fatal("plan-only run should not execute")
	}
}

func TestRunWithExecutionAndBaselines(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "query", "-size-gb", "0.05", "-objects", "6",
		"-objective", "cost", "-deadline", "1h",
		"-run", "-baselines", "-timeline",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"measured:", "Baseline 1", "Baseline 3", "coordinator"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "sort", "-size-gb", "0.02", "-objects", "4",
		"-run", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if res.Workload != "sort" || res.Measured == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Predicted.JCTSeconds <= 0 || res.Measured.CostUSD <= 0 {
		t.Fatalf("degenerate numbers: %+v", res)
	}
}

func TestRunFromSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	doc := `{
	  "workload": "grep", "size_gb": 0.05, "objects": 6,
	  "objective": "time", "budget_usd": 0.01,
	  "orchestrator": "step-functions", "intermediates": "cache",
	  "task_retries": 1
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", path, "-run", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if res.Workload != "grep" || res.Measured == nil {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunFromBadSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"workload":"zzz"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", path}, &out); err == nil {
		t.Fatal("bad spec should fail")
	}
	if err := run(context.Background(), []string{"-spec", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Fatal("missing spec should fail")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-workload", "nope"},
		{"-objective", "speed"},
		{"-size-gb", "0"},
		{"-objects", "-1"},
		{"-solver", "magic"},
		{"-objective", "time", "-budget", "-0.01"},
		{"-objective", "cost", "-deadline", "-1m"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunParallelismFlagMatchesSerial(t *testing.T) {
	base := []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01", "-json",
	}
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), append(base, "-parallelism", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(base, "-parallelism", "4"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("plans differ across -parallelism:\nserial: %s\nparallel: %s",
			serial.String(), parallel.String())
	}
}

// TestRunExplainAndMetricsOut drives the observability surface end to
// end: -explain must print a populated search report, and -metrics-out
// must write Prometheus text exposition that parses back with the
// planner and platform counters present.
func TestRunExplainAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "sort", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
		"-run", "-explain", "-metrics-out", promPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"execution plan", "search", "configs evaluated:", "dag:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain output missing %q:\n%s", want, s)
		}
	}

	raw, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("unexpected comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	if values["astra_plan_solves_total"] < 1 {
		t.Fatalf("plan solves = %v, want >= 1 (families: %d)", values["astra_plan_solves_total"], len(values))
	}
	if values["astra_lambda_invocations_total"] <= 0 {
		t.Fatalf("lambda invocations = %v, want > 0", values["astra_lambda_invocations_total"])
	}
	if values["astra_dag_nodes"] <= 0 {
		t.Fatalf("dag nodes = %v, want > 0", values["astra_dag_nodes"])
	}
}

// TestRunMetricsOutJSON: a .json suffix switches the metrics export to
// the JSON snapshot, spans included.
func TestRunMetricsOutJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "grep", "-size-gb", "0.05", "-objects", "6",
		"-objective", "time", "-budget", "0.01",
		"-run", "-metrics-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Path string `json:"path"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if doc.Counters["astra_plan_solves_total"] < 1 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	foundRun := false
	for _, sp := range doc.Spans {
		if sp.Path == "run" {
			foundRun = true
		}
	}
	if !foundRun {
		t.Fatal("metrics JSON missing the virtual 'run' span")
	}
}

// TestRunTraceOutText: a .txt suffix renders the Gantt chart to the
// trace file instead of CSV.
func TestRunTraceOutText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "sort", "-size-gb", "0.02", "-objects", "4",
		"-run", "-trace-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "#") || !strings.Contains(string(raw), "lambda") {
		t.Fatalf("trace .txt is not a Gantt render:\n%s", raw)
	}
}

func TestRunPlanTimeoutExpired(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "sort", "-size-gb", "100", "-objects", "200",
		"-objective", "cost", "-deadline", "1h",
		"-plan-timeout", "1ns",
	}, &out)
	if err == nil {
		t.Fatal("expired -plan-timeout should abort planning")
	}
}

// TestRunAuditAndEventsOut drives the flight-recorder surface: -audit
// prints the critical-path and model-accuracy report, and -events-out
// writes a JSONL stream that is byte-identical across two identical runs.
func TestRunAuditAndEventsOut(t *testing.T) {
	dir := t.TempDir()
	args := func(path string) []string {
		return []string{
			"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
			"-objective", "time", "-budget", "0.01",
			"-audit", "-events-out", path,
		}
	}
	var out bytes.Buffer
	p1 := filepath.Join(dir, "e1.jsonl")
	if err := run(context.Background(), args(p1), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"flight audit", "critical path", "blocking chain:", "model accuracy", "overall stage MAPE"} {
		if !strings.Contains(s, want) {
			t.Fatalf("audit output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "measured:") {
		t.Fatal("-audit must imply -run")
	}
	p2 := filepath.Join(dir, "e2.jsonl")
	if err := run(context.Background(), args(p2), io.Discard); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 || !bytes.Equal(b1, b2) {
		t.Fatal("-events-out streams differ across identical runs")
	}
	for _, line := range strings.Split(strings.TrimSpace(string(b1)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events file line %q is not JSON: %v", line, err)
		}
	}
}

// TestRunAuditJSON: with -json the audit is embedded in the result
// document instead of rendered as text.
func TestRunAuditJSON(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
		"-audit", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if res.Audit == nil || len(res.Audit.Path.Stages) == 0 {
		t.Fatalf("result.Audit missing or empty: %+v", res.Audit)
	}
	if res.Audit.JCTPredicted <= 0 {
		t.Fatalf("audit lacks a prediction: %+v", res.Audit)
	}
}

// TestRunRefusesToOverwriteOutputs: every -*-out flag must refuse to
// clobber an existing file unless -f is passed, and the refusal must
// happen before any planning work.
func TestRunRefusesToOverwriteOutputs(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
	}
	for _, flagName := range []string{"-trace-out", "-metrics-out", "-events-out", "-cpuprofile", "-memprofile"} {
		path := filepath.Join(dir, strings.TrimPrefix(flagName, "-"))
		if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run(context.Background(), append(append([]string{}, base...), flagName, path), &out)
		if err == nil || !strings.Contains(err.Error(), "pass -f to overwrite") {
			t.Fatalf("%s over an existing file: err = %v, want overwrite refusal", flagName, err)
		}
		if got, _ := os.ReadFile(path); string(got) != "precious" {
			t.Fatalf("%s clobbered the existing file", flagName)
		}
		// With -f the same invocation must succeed and replace the file.
		if err := run(context.Background(), append(append([]string{}, base...), flagName, path, "-f"), io.Discard); err != nil {
			t.Fatalf("%s with -f: %v", flagName, err)
		}
		if got, _ := os.ReadFile(path); string(got) == "precious" {
			t.Fatalf("%s -f did not overwrite", flagName)
		}
	}
}

// TestRunFrontierMode drives the -frontier CLI path end to end: the
// anytime phases narrate to stdout, the final points print
// fastest-first, and -frontier-out writes a parseable CSV.
func TestRunFrontierMode(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "points.csv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-frontier", "6", "-frontier-out", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"phase 1:", "frontier:", "workload:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}

	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	wantHeader := "jct_seconds,cost_usd,mapper_mem_mb,coord_mem_mb,reducer_mem_mb,objs_per_mapper,objs_per_reducer"
	if lines[0] != wantHeader {
		t.Fatalf("csv header = %q, want %q", lines[0], wantHeader)
	}
	if len(lines) < 3 {
		t.Fatalf("csv has %d data rows, want >= 2", len(lines)-1)
	}
	prev := -1.0
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 7 {
			t.Fatalf("csv row %q has %d columns", line, len(cols))
		}
		jct, err := strconv.ParseFloat(cols[0], 64)
		if err != nil || jct <= 0 {
			t.Fatalf("csv row %q: bad jct (%v)", line, err)
		}
		if jct < prev {
			t.Fatalf("csv rows not sorted by time: %v after %v", jct, prev)
		}
		prev = jct
		for _, c := range cols[2:] {
			if v, err := strconv.Atoi(c); err != nil || v <= 0 {
				t.Fatalf("csv row %q: bad config column %q", line, c)
			}
		}
	}
}

// TestRunFrontierJSON: with -json the sweep emits the machine-readable
// document, identical across serial and parallel invocations.
func TestRunFrontierJSON(t *testing.T) {
	base := []string{
		"-workload", "sort", "-size-gb", "0.05", "-objects", "8",
		"-frontier", "8", "-json",
	}
	var serial, par bytes.Buffer
	if err := run(context.Background(), append(base, "-parallelism", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	var doc frontierJSON
	if err := json.Unmarshal(serial.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, serial.String())
	}
	if doc.Workload != "sort" || len(doc.Points) < 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Stats.Searches <= 0 || doc.Stats.Evaluations <= 0 {
		t.Fatalf("stats = %+v", doc.Stats)
	}
	if err := run(context.Background(), append(base, "-parallelism", "4"), &par); err != nil {
		t.Fatal(err)
	}
	// Wall time varies run to run; points and counters must not.
	trim := func(b bytes.Buffer) string {
		var d frontierJSON
		if err := json.Unmarshal(b.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		d.Stats.WallSeconds = 0
		out, _ := json.Marshal(d)
		return string(out)
	}
	if trim(serial) != trim(par) {
		t.Fatalf("frontier differs across -parallelism:\nserial: %s\nparallel: %s",
			serial.String(), par.String())
	}
}

// TestRunFrontierFlagValidation: the frontier flags reject nonsensical
// combinations and honor the no-clobber contract.
func TestRunFrontierFlagValidation(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	cases := [][]string{
		{"-frontier", "-1"},
		{"-frontier-out", filepath.Join(dir, "p.csv")}, // requires -frontier
		{"-frontier", "4", "-run"},
		{"-frontier", "4", "-baselines"},
		{"-frontier", "4", "-explain"},
		{"-frontier", "4", "-audit"}, // -audit implies -run
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	// No-clobber: an existing -frontier-out must refuse without -f.
	path := filepath.Join(dir, "points.csv")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8", "-frontier", "4"}
	err := run(context.Background(), append(append([]string{}, base...), "-frontier-out", path), &out)
	if err == nil || !strings.Contains(err.Error(), "pass -f to overwrite") {
		t.Fatalf("-frontier-out over an existing file: err = %v, want overwrite refusal", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "precious" {
		t.Fatal("-frontier-out clobbered the existing file")
	}
	if err := run(context.Background(), append(append([]string{}, base...), "-frontier-out", path, "-f"), io.Discard); err != nil {
		t.Fatalf("-frontier-out with -f: %v", err)
	}
	if got, _ := os.ReadFile(path); !strings.HasPrefix(string(got), "jct_seconds,") {
		t.Fatal("-frontier-out -f did not overwrite")
	}
}

// TestRunFailsFastOnUnwritableOutputs: an output path in a nonexistent
// directory must fail the command (non-zero exit via main) up front.
func TestRunFailsFastOnUnwritableOutputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "no", "such", "dir", "out.file")
	base := []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
	}
	for _, flagName := range []string{"-trace-out", "-metrics-out", "-events-out", "-cpuprofile", "-memprofile"} {
		var out bytes.Buffer
		if err := run(context.Background(), append(append([]string{}, base...), flagName, bad), &out); err == nil {
			t.Fatalf("%s to an unwritable path must fail", flagName)
		}
		if out.Len() != 0 {
			t.Fatalf("%s: output written before the path check:\n%s", flagName, out.String())
		}
	}
}

// syncBuffer lets the serve test read run's output while run is still
// writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeEndToEnd drives -serve the way an operator would: plan and
// run a job with the plane up, scrape every endpoint, then interrupt
// (context cancel) to end the -serve-for window and shut down cleanly.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
			"-objective", "time", "-budget", "0.01",
			"-run", "-serve", "127.0.0.1:0", "-serve-for", "1h",
		}, &out)
	}()

	deadline := time.Now().Add(30 * time.Second)
	waitFor := func(what string, pred func(string) bool) {
		t.Helper()
		for time.Now().Before(deadline) {
			if pred(out.String()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; output so far:\n%s", what, out.String())
	}

	addrRe := regexp.MustCompile(`observability: (http://\S+)`)
	waitFor("the observability line", func(s string) bool { return addrRe.MatchString(s) })
	base := addrRe.FindStringSubmatch(out.String())[1]
	// "serving for" prints once plan+run are done, so every endpoint has
	// its final content.
	waitFor("the work to finish", func(s string) bool { return strings.Contains(s, "serving for") })

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		"astra_go_goroutines",            // runtime sampler is on
		"astra_obs_http_requests_total{", // the plane meters itself
		"astra_plan_solves_total",        // planning published its counters
		"astra_lambda_invocations_total", // ... and so did the run
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	// Every sample line must parse as `name[{labels}] value` — the
	// 0.0.4 text shape Prometheus ingests.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	for _, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("/metrics line does not parse: %q", line)
		}
	}
	if code, body := get("/explain"); code != 200 || len(body) == 0 {
		t.Fatalf("/explain: %d (%d bytes)", code, len(body))
	}
	if code, body := get("/events?follow=0"); code != 200 || !strings.Contains(body, "id: 1\n") {
		t.Fatalf("/events: %d, first frame missing:\n%.400s", code, body)
	}

	cancel() // the operator's ctrl-c: ends -serve-for, shuts the plane down
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestProfileFlagsWriteValidProfiles: -cpuprofile and -memprofile write
// non-empty gzipped pprof protos via the up-front no-clobber open path.
func TestProfileFlagsWriteValidProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run(context.Background(), []string{
		"-workload", "wordcount", "-size-gb", "0.05", "-objects", "8",
		"-objective", "time", "-budget", "0.01",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Fatalf("%s: not a gzipped profile (%d bytes)", path, len(b))
		}
	}
}
