// Command astra-explore sweeps one configuration knob for a job and
// prints the resulting completion-time/cost curve — the paper's Fig. 1,
// Fig. 2 and Fig. 6 methodology, generalized to any workload and input.
//
//	astra-explore -workload wordcount -size-gb 1 -objects 20 -knob memory
//	astra-explore -workload sort -size-gb 10 -objects 40 -knob objs-per-mapper
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/obs"
	"astra/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "astra-explore:", err)
		os.Exit(1)
	}
}

type options struct {
	workload string
	sizeGB   float64
	objects  int
	knob     string
	mem      int
	kM       int
	kR       int
	measure  bool
	serve    string
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("astra-explore", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.workload, "workload", "wordcount",
		"workload profile: wordcount, sort, query, grep, spark-wordcount, spark-sql")
	fs.Float64Var(&o.sizeGB, "size-gb", 1.0, "total input size in GB")
	fs.IntVar(&o.objects, "objects", 20, "number of input objects")
	fs.StringVar(&o.knob, "knob", "memory",
		"knob to sweep: memory, objs-per-mapper, objs-per-reducer")
	fs.IntVar(&o.mem, "memory", 1024, "fixed memory MB for the non-swept lambdas")
	fs.IntVar(&o.kM, "objs-per-mapper", 2, "fixed objects per mapper when not swept")
	fs.IntVar(&o.kR, "objs-per-reducer", 2, "fixed objects per reducer when not swept")
	fs.BoolVar(&o.measure, "measure", false,
		"execute each point on the simulator instead of predicting")
	fs.StringVar(&o.serve, "serve", "",
		"expose the live observability plane on this address while the sweep runs")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// sweepValues enumerates the knob's candidate values.
func sweepValues(o *options, params model.Params) ([]int, error) {
	switch o.knob {
	case "memory":
		return []int{128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2560, 3008}, nil
	case "objs-per-mapper", "objs-per-reducer":
		var vals []int
		for k := 1; k <= o.objects; k++ {
			vals = append(vals, k)
			if len(vals) >= 24 {
				break
			}
		}
		return vals, nil
	default:
		return nil, fmt.Errorf("unknown knob %q", o.knob)
	}
}

// configAt builds the configuration for one sweep point.
func configAt(o *options, v int) mapreduce.Config {
	cfg := mapreduce.Config{
		MapperMemMB: o.mem, CoordMemMB: o.mem, ReducerMemMB: o.mem,
		ObjsPerMapper: o.kM, ObjsPerReducer: o.kR,
	}
	switch o.knob {
	case "memory":
		cfg.MapperMemMB, cfg.CoordMemMB, cfg.ReducerMemMB = v, v, v
	case "objs-per-mapper":
		cfg.ObjsPerMapper = v
	case "objs-per-reducer":
		cfg.ObjsPerReducer = v
	}
	return cfg
}

func run(args []string, out io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.serve != "" {
		srv := obs.NewServer(obs.Options{RuntimeMetrics: true})
		if err := srv.Start(o.serve); err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "astra-explore: observability at http://%s\n", srv.Addr())
	}
	pf, err := workload.ByName(o.workload)
	if err != nil {
		return err
	}
	if o.sizeGB <= 0 || o.objects <= 0 {
		return fmt.Errorf("size and object count must be positive")
	}
	totalBytes := int64(o.sizeGB * float64(int64(1)<<30))
	job := workload.Job{
		Profile:    pf,
		NumObjects: o.objects,
		ObjectSize: totalBytes / int64(o.objects),
	}
	params := model.DefaultParams(job)
	vals, err := sweepValues(o, params)
	if err != nil {
		return err
	}

	exact := model.NewExact(params)
	source := "predicted"
	if o.measure {
		source = "measured"
	}
	fmt.Fprintf(out, "%s: %s sweep over %s (%d objects, %.2f GB)\n",
		source, o.knob, o.workload, o.objects, o.sizeGB)
	fmt.Fprintf(out, "%-18s %-12s %-12s %-10s %-10s\n", o.knob, "JCT", "cost", "mappers", "reducers")

	bestV, bestJCT := 0, 0.0
	for _, v := range vals {
		cfg := configAt(o, v)
		pred, err := exact.Predict(cfg)
		if err != nil {
			continue // infeasible point (e.g. kM > N)
		}
		jct, cost := pred.TotalSec(), pred.TotalCost()
		orch := pred.Orch
		if o.measure {
			rep, err := measure(params, cfg)
			if err != nil {
				continue
			}
			jct, cost, orch = rep.JCT.Seconds(), rep.Cost.Total(), rep.Orchestration
		}
		fmt.Fprintf(out, "%-18d %-12s %-12s %-10d %-10d\n",
			v, fmt.Sprintf("%.2fs", jct), cost, orch.Mappers(), orch.Reducers())
		if bestV == 0 || jct < bestJCT {
			bestV, bestJCT = v, jct
		}
	}
	if bestV == 0 {
		return fmt.Errorf("no feasible sweep point")
	}
	fmt.Fprintf(out, "fastest at %s = %d (%.2fs)\n", o.knob, bestV, bestJCT)
	return nil
}
