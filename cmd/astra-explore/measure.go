package main

import (
	"astra/internal/lambda"
	"astra/internal/mapreduce"
	"astra/internal/model"
	"astra/internal/objectstore"
	"astra/internal/simtime"
	"astra/internal/workload"
)

// measure executes one sweep point on a fresh simulated platform.
func measure(params model.Params, cfg mapreduce.Config) (*mapreduce.Report, error) {
	sched := simtime.NewScheduler()
	store := objectstore.New(sched, objectstore.Config{
		Bandwidth:      params.BandwidthBps,
		RequestLatency: params.RequestLatency,
		Pricing:        params.Sheet.Store,
	})
	pl := lambda.New(sched, store, lambda.Config{
		Sheet:           params.Sheet,
		Speed:           params.Speed,
		DispatchLatency: params.DispatchLatency,
		DisableTimeout:  true,
	})
	keys, err := workload.SeedProfiled(store, "in", params.Job)
	if err != nil {
		return nil, err
	}
	driver := mapreduce.NewDriver(pl)
	var rep *mapreduce.Report
	var runErr error
	err = sched.Run(func(p *simtime.Proc) {
		rep, runErr = driver.Run(p, mapreduce.JobSpec{
			Workload:  params.Job,
			Bucket:    "in",
			InputKeys: keys,
			Mode:      mapreduce.Profiled,
		}, cfg)
	})
	if err != nil {
		return nil, err
	}
	return rep, runErr
}
