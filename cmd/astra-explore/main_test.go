package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMemorySweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "wordcount", "-size-gb", "0.1", "-objects", "10",
		"-knob", "memory",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"memory sweep", "128", "1792", "3008", "fastest at memory"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// With the 1792 MB speed floor, the fastest memory is 1792 (ties
	// above it cost more but run equally fast; the sweep keeps the first).
	if !strings.Contains(s, "fastest at memory = 1792") {
		t.Fatalf("expected the floor to win:\n%s", s)
	}
}

func TestMapperSweepMeasured(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "sort", "-size-gb", "0.2", "-objects", "12",
		"-knob", "objs-per-mapper", "-measure",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "measured: objs-per-mapper sweep") {
		t.Fatalf("output:\n%s", s)
	}
	// All 12 feasible kM values appear.
	if !strings.Contains(s, "\n12 ") {
		t.Fatalf("missing kM=12 row:\n%s", s)
	}
}

func TestReducerSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "query", "-size-gb", "0.1", "-objects", "8",
		"-knob", "objs-per-reducer",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "objs-per-reducer sweep") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestExploreRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "zzz"},
		{"-knob", "color"},
		{"-size-gb", "0"},
		{"-objects", "0"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
