package astra

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"astra/internal/flight"
)

// runQoSMonitored plans (exercising the requested engine parallelism) and
// runs the chaos test job under the given chaos profile ("" = clean) with
// a QoS monitor attached, returning the report and the monitor snapshot.
func runQoSMonitored(t *testing.T, profile string, deadline time.Duration, parallelism int) (*Report, QoSSnapshot) {
	t.Helper()
	job := chaosJob()
	if _, err := Plan(job, MinTime(1), WithParallelism(parallelism)); err != nil {
		t.Fatal(err)
	}
	var opts []RunOption
	if profile != "" {
		plan, err := LoadChaosPlan("testdata/chaos/" + profile)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewChaosEngine(plan)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithChaos(eng), WithTaskRetries(6))
	}
	mon := NewQoSMonitor(QoSOptions{Deadline: deadline, Tenant: "test", Job: "chaos"})
	opts = append(opts, WithQoSMonitor(mon))
	rep, err := Run(job, chaosCfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep, mon.Snapshot()
}

// TestQoSCleanRunStaysOnTrack: without injected faults the model's
// predicted schedule holds, so the monitor must never leave on_track and
// must record no transitions at all (acceptance criterion: clean runs of
// the chaos jobs never leave on_track).
func TestQoSCleanRunStaysOnTrack(t *testing.T) {
	rep, snap := runQoSMonitored(t, "", 0, 1)
	if snap.State != "on_track" {
		t.Fatalf("clean run ended %q, want on_track (snapshot %+v)", snap.State, snap)
	}
	if len(snap.Transitions) != 0 {
		t.Fatalf("clean run recorded transitions: %+v", snap.Transitions)
	}
	if !snap.Ended || snap.ProjectedJCT != rep.JCT {
		t.Fatalf("ended snapshot must project the measured JCT: got %v want %v", snap.ProjectedJCT, rep.JCT)
	}
	if snap.Slip != 0 {
		t.Fatalf("clean run accumulated schedule slip %v", snap.Slip)
	}
	if snap.Cost.SpentUSD <= 0 {
		t.Fatal("monitored run tracked no cost burn")
	}
}

// TestQoSChaosAtRiskBeforeBreach is the tentpole acceptance criterion: on
// the straggler and throttle-storm profiles the monitor must flip to
// at_risk at a virtual instant strictly before the deadline is actually
// blown, and the transition sequence must be byte-identical across serial
// vs parallel planning and repeated runs.
func TestQoSChaosAtRiskBeforeBreach(t *testing.T) {
	for _, profile := range []string{"straggler.json", "throttle-storm.json"} {
		t.Run(profile, func(t *testing.T) {
			// Probe run with an unreachable deadline to learn the predicted
			// and the actual (chaos-stretched) JCT, then pick a deadline
			// between them so the monitored runs genuinely breach.
			probeRep, probeSnap := runQoSMonitored(t, profile, 24*time.Hour, 1)
			pred, actual := probeSnap.PredictedJCT, probeRep.JCT
			if actual <= pred {
				t.Fatalf("profile injected no slowdown (pred %v, actual %v); test is vacuous", pred, actual)
			}
			deadline := (pred + actual) / 2
			if theta := deadline - time.Duration(0.05*float64(deadline)); theta <= pred {
				t.Fatalf("chaos too mild to separate threshold from prediction (pred %v, actual %v)", pred, actual)
			}

			type outcome struct {
				snap QoSSnapshot
				txs  []byte
			}
			collect := func(parallelism int) outcome {
				_, snap := runQoSMonitored(t, profile, deadline, parallelism)
				txs, err := json.Marshal(snap.Transitions)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{snap, txs}
			}
			serial, again, par := collect(1), collect(1), collect(0)

			if serial.snap.State != "breached" {
				t.Fatalf("chaos run ended %q, want breached (deadline %v, actual %v)", serial.snap.State, deadline, serial.snap.ProjectedJCT)
			}
			var atRisk, breached *QoSTransition
			for i := range serial.snap.Transitions {
				tr := &serial.snap.Transitions[i]
				if tr.Kind != "risk" {
					continue
				}
				switch tr.State {
				case "at_risk":
					atRisk = tr
				case "breached":
					breached = tr
				}
			}
			if atRisk == nil || breached == nil {
				t.Fatalf("missing risk transitions: %+v", serial.snap.Transitions)
			}
			if atRisk.At >= deadline {
				t.Fatalf("at_risk fired at %v, not strictly before the deadline %v", atRisk.At, deadline)
			}
			if breached.At != deadline {
				t.Fatalf("breach recorded at %v, want the deadline instant %v", breached.At, deadline)
			}
			if atRisk.At >= breached.At {
				t.Fatalf("at_risk (%v) did not strictly precede the breach (%v)", atRisk.At, breached.At)
			}
			if !bytes.Equal(serial.txs, again.txs) {
				t.Fatalf("repeated runs diverged:\n%s\n%s", serial.txs, again.txs)
			}
			if !bytes.Equal(serial.txs, par.txs) {
				t.Fatalf("parallel planning changed the transition sequence:\n%s\n%s", serial.txs, par.txs)
			}
		})
	}
}

// TestQoSMonitorIsObserveOnly: the recorded flight JSONL must be
// byte-identical with the monitor on vs off, across clean and chaos
// profiles and serial vs parallel planning — and attaching a nil monitor
// must be inert.
func TestQoSMonitorIsObserveOnly(t *testing.T) {
	job := chaosJob()
	export := func(profile string, parallelism int, withMonitor bool) []byte {
		t.Helper()
		if _, err := Plan(job, MinTime(1), WithParallelism(parallelism)); err != nil {
			t.Fatal(err)
		}
		rec := NewFlightRecorder()
		opts := []RunOption{WithFlightRecorder(rec)}
		if profile != "" {
			plan, err := LoadChaosPlan("testdata/chaos/" + profile)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewChaosEngine(plan)
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, WithChaos(eng), WithTaskRetries(6))
		}
		if withMonitor {
			opts = append(opts, WithQoSMonitor(NewQoSMonitor(QoSOptions{
				Ledger: NewQoSLedger(), Telemetry: NewTelemetry(),
			})))
		}
		rep, err := Run(job, chaosCfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flight.WriteJSONL(&buf, rep.Events); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, profile := range []string{"", "straggler.json", "throttle-storm.json"} {
		for _, parallelism := range []int{1, 0} {
			plain := export(profile, parallelism, false)
			monitored := export(profile, parallelism, true)
			if len(plain) == 0 {
				t.Fatalf("profile %q exported no events", profile)
			}
			if !bytes.Equal(plain, monitored) {
				t.Fatalf("monitor perturbed the event stream (profile %q, parallelism %d)", profile, parallelism)
			}
		}
	}

	// A nil monitor is a no-op everywhere: the option must not attach it,
	// and calling its methods directly must be safe.
	var nilMon *QoSMonitor
	nilMon.Poll(0)
	nilMon.EndRun(0)
	if got := nilMon.Snapshot(); got.State != "on_track" {
		t.Fatalf("nil monitor snapshot state %q", got.State)
	}
	plain, err := Run(job, chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	under, err := Run(job, chaosCfg, WithQoSMonitor(nilMon))
	if err != nil {
		t.Fatal(err)
	}
	if plain.JCT != under.JCT || plain.Cost != under.Cost {
		t.Fatalf("nil monitor perturbed the run: %v/%v vs %v/%v", plain.JCT, plain.Cost, under.JCT, under.Cost)
	}
}

// TestQoSConcurrentReadersRace hammers one recorder with the driver's
// monitor plus concurrent EventsSince/Snapshot readers (the SSE-client
// shape) while a run executes — meaningful under -race.
func TestQoSConcurrentReadersRace(t *testing.T) {
	rec := NewFlightRecorder()
	mon := NewQoSMonitor(QoSOptions{Ledger: NewQoSLedger()})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var seq int64
			for {
				select {
				case <-done:
					return
				default:
				}
				if evs := rec.EventsSince(seq); len(evs) > 0 {
					seq = evs[len(evs)-1].Seq
				}
				_ = mon.Snapshot()
				_ = mon.TransitionsSince(0)
				runtime.Gosched()
			}
		}()
	}
	_, err := Run(chaosJob(), chaosCfg, WithFlightRecorder(rec), WithQoSMonitor(mon))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	snap := mon.Snapshot()
	if !snap.Ended {
		t.Fatal("monitor never saw the run end")
	}
}
